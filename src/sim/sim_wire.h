// An in-memory `core::Wire` over the Internet simulator, in real time.
//
// Probes go straight into a SimNetwork; the response (if any) becomes
// receivable once its simulated RTT has elapsed on the *real* clock — each
// lane rebases the simulator's virtual timeline onto the monotonic clock at
// its first transmit.  This is what lets the real-time runtimes
// (core/threaded_runtime.h) and their tests/benches run an actual FlashRoute
// scan against the simulator without raw sockets.
//
// Thread safety: `transmit` may be called concurrently from many sender
// threads (the sharded runtime does).  The wire is internally laned by the
// probe's destination /24 so that each lane's SimNetwork only ever sees
// non-decreasing send times: with one lane per shard, a lane is only fed by
// the single worker that owns the shard.  Lanes are independently locked, so
// senders to different lanes never contend.  The per-interface ICMP rate
// limiters consequently live per lane rather than globally — acceptable for
// testing and benchmarking, where shards map to disjoint interface sets.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/threaded_runtime.h"
#include "sim/network.h"
#include "sim/response_pool.h"
#include "sim/topology.h"
#include "util/annotations.h"
#include "util/clock.h"
#include "util/sync.h"

namespace flashroute::sim {

class RealTimeSimWire final : public core::Wire {
 public:
  /// One lane per contiguous run of `num_prefixes / num_lanes` /24s starting
  /// at `first_prefix`.  `num_lanes` must divide `num_prefixes`; pass the
  /// shard count when driving a sharded runtime (so each lane has a single
  /// sender), or 1 for a single-threaded sender.
  RealTimeSimWire(const Topology& topology, std::uint32_t first_prefix,
                  std::uint32_t num_prefixes, std::uint32_t num_lanes = 1)
      : first_prefix_(first_prefix),
        num_prefixes_(num_prefixes),
        lane_size_(num_prefixes / std::max<std::uint32_t>(num_lanes, 1)) {
    lanes_.reserve(num_lanes);
    for (std::uint32_t i = 0; i < num_lanes; ++i) {
      lanes_.push_back(std::make_unique<Lane>(topology));
    }
  }

  [[nodiscard]] bool try_transmit(std::span<const std::byte> packet) override {
    // Outer IPv4 destination (bytes 16..19) names the lane.  A short or
    // out-of-range packet never reached the wire — that is a failed send,
    // not a silently swallowed one.
    if (packet.size() < 20) return false;
    const std::uint32_t dst =
        (static_cast<std::uint32_t>(packet[16]) << 24) |
        (static_cast<std::uint32_t>(packet[17]) << 16) |
        (static_cast<std::uint32_t>(packet[18]) << 8) |
        static_cast<std::uint32_t>(packet[19]);
    const std::uint32_t prefix = dst >> 8;
    if (prefix < first_prefix_ || prefix - first_prefix_ >= num_prefixes_) {
      return false;
    }
    Lane& lane = *lanes_[(prefix - first_prefix_) / lane_size_];

    const util::Nanos now = clock_.now();
    const util::MutexLock guard(lane.mutex);
    // Rebase the simulator's virtual timeline onto the real clock.
    if (lane.epoch == 0) lane.epoch = now;
    // The lane's single sender reads the clock before locking, so times are
    // already monotonic; the clamp guards lanes coarser than one sender.
    const util::Nanos send_time =
        std::max(now - lane.epoch, lane.last_send_time);
    lane.last_send_time = send_time;
    // Transient local send failure (fault plane), drawn on the lane's
    // virtual send time like SimScanRuntime does.
    if (FaultPlane* plane = lane.network.fault_plane();
        plane != nullptr && plane->fail_send(send_time)) {
      return false;
    }
    // Responses are encoded straight into a recycled per-lane pool slot; the
    // pending list carries only {due, slot, size} (see sim/response_pool.h).
    const ResponsePool::Slot slot = lane.pool.acquire();
    if (auto response =
            lane.network.process_into(packet, send_time, lane.pool.buffer(slot))) {
      lane.pending.push_back({lane.epoch + response->arrival, slot,
                              static_cast<std::uint32_t>(response->size)});
      if (response->duplicate_arrival > 0) {
        // Fault-plane duplication: a second pooled copy at its own due time.
        const ResponsePool::Slot copy = lane.pool.acquire();
        std::memcpy(lane.pool.buffer(copy).data(),
                    lane.pool.buffer(slot).data(), response->size);
        lane.pending.push_back({lane.epoch + response->duplicate_arrival, copy,
                                static_cast<std::uint32_t>(response->size)});
      }
    } else {
      lane.pool.release(slot);
    }
    return true;
  }

  std::size_t receive_into(std::span<std::byte> buffer,
                           util::Nanos timeout) override {
    const util::Nanos deadline = clock_.now() + timeout;
    do {
      const util::Nanos now = clock_.now();
      // Round-robin over lanes from a rotating cursor so no lane starves.
      for (std::size_t i = 0; i < lanes_.size(); ++i) {
        Lane& lane = *lanes_[(cursor_ + i) % lanes_.size()];
        const util::MutexLock guard(lane.mutex);
        for (auto it = lane.pending.begin(); it != lane.pending.end(); ++it) {
          if (it->due > now) continue;
          const std::size_t size = it->size;
          if (size > buffer.size()) {
            // Wire contract: oversize packets are dropped, not truncated.
            lane.pool.release(it->slot);
            lane.pending.erase(it);
            ++oversize_dropped_;
            break;
          }
          std::memcpy(buffer.data(), lane.pool.buffer(it->slot).data(), size);
          lane.pool.release(it->slot);
          lane.pending.erase(it);
          cursor_ = (cursor_ + i + 1) % lanes_.size();
          return size;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    } while (clock_.now() < deadline);
    return 0;
  }

  /// Aggregated simulator statistics across all lanes.
  NetworkStats stats() const {
    NetworkStats total;
    for (const auto& lane : lanes_) {
      const util::MutexLock guard(lane->mutex);
      const NetworkStats& s = lane->network.stats();
      total.probes += s.probes;
      total.malformed += s.malformed;
      total.out_of_universe += s.out_of_universe;
      total.time_exceeded_sent += s.time_exceeded_sent;
      total.destination_responses += s.destination_responses;
      total.silent_interface += s.silent_interface;
      total.silent_host += s.silent_host;
      total.rate_limited += s.rate_limited;
      total.dropped_dark += s.dropped_dark;
      total.route_cache_hits += s.route_cache_hits;
      total.route_cache_misses += s.route_cache_misses;
    }
    return total;
  }

  std::uint64_t oversize_dropped() const noexcept { return oversize_dropped_; }

 private:
  struct Pending {
    util::Nanos due;
    ResponsePool::Slot slot;  // payload lives in the lane's pool
    std::uint32_t size;
  };

  struct Lane {
    explicit Lane(const Topology& topology) : network(topology) {}

    mutable util::Mutex mutex;
    SimNetwork network FR_GUARDED_BY(mutex);
    std::vector<Pending> pending FR_GUARDED_BY(mutex);
    ResponsePool pool FR_GUARDED_BY(mutex);
    util::Nanos epoch FR_GUARDED_BY(mutex) = 0;
    util::Nanos last_send_time FR_GUARDED_BY(mutex) = 0;
  };

  util::MonotonicClock clock_;
  std::uint32_t first_prefix_;
  std::uint32_t num_prefixes_;
  std::uint32_t lane_size_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::size_t cursor_ = 0;             // receiver thread only
  std::uint64_t oversize_dropped_ = 0;  // receiver thread only
};

}  // namespace flashroute::sim
