#include "sim/topology.h"

#include <algorithm>
#include <stdexcept>

#include "net/headers.h"

namespace flashroute::sim {

namespace {

// Tags mixed into the master seed so each stochastic aspect of the model
// draws from an independent stream.
enum SeedTag : std::uint64_t {
  kTagHost = 0x686f7374,
  kTagDepth = 0x64657074,
  kTagUdp = 0x756470,
  kTagTcp = 0x746370,
  kTagSilent = 0x73696c31,
  kTagSilentTcp = 0x73696c32,
  kTagDyn = 0x64796e,
  kTagLoop = 0x6c6f6f70,
  kTagHitlist = 0x686974,
  kTagInternal = 0x696e74,
  kTagBlock = 0x626c6f63,
  kTagRouted = 0x726f7574,
  kTagAssign = 0x61736767,
  kTagDarkProv = 0x64707276,
  kTagDarkBack = 0x6462636b,
  kTagDarkLoop = 0x646c6f70,
};

constexpr std::uint8_t kApplianceOctet = 1;

}  // namespace

Topology::Topology(const SimParams& params)
    : params_(params),
      next_pool_ip_(params.interface_pool_base),
      seed_host_(util::hash_combine(params.seed, kTagHost)),
      seed_depth_(util::hash_combine(params.seed, kTagDepth)),
      seed_udp_(util::hash_combine(params.seed, kTagUdp)),
      seed_tcp_(util::hash_combine(params.seed, kTagTcp)),
      seed_silent_(util::hash_combine(params.seed, kTagSilent)),
      seed_silent_tcp_(util::hash_combine(params.seed, kTagSilentTcp)),
      seed_dyn_(util::hash_combine(params.seed, kTagDyn)),
      seed_loop_(util::hash_combine(params.seed, kTagLoop)),
      seed_hitlist_(util::hash_combine(params.seed, kTagHitlist)),
      seed_internal_(util::hash_combine(params.seed, kTagInternal)),
      seed_block_(util::hash_combine(params.seed, kTagBlock)),
      seed_routed_(util::hash_combine(params.seed, kTagRouted)),
      seed_assign_(util::hash_combine(params.seed, kTagAssign)),
      seed_dark_prov_(util::hash_combine(params.seed, kTagDarkProv)),
      seed_dark_back_(util::hash_combine(params.seed, kTagDarkBack)),
      seed_dark_loop_(util::hash_combine(params.seed, kTagDarkLoop)) {
  if (params_.prefix_bits < 1 || params_.prefix_bits > 24) {
    throw std::invalid_argument("prefix_bits must be in [1, 24]");
  }
  const std::uint64_t universe_first =
      std::uint64_t{params_.first_prefix} << 8;
  const std::uint64_t universe_last =
      (std::uint64_t{params_.last_prefix()} << 8) | 0xFF;
  if (std::uint64_t{params_.last_prefix()} < params_.first_prefix ||
      universe_last > 0xFFFFFFFFull) {
    throw std::invalid_argument("destination universe overflows IPv4 space");
  }
  // The interface pool must not overlap the destination universe: pool IPs
  // are "provider" addresses, universe IPs are scan targets.  The one
  // exception is the full-IPv4 universe (prefix_bits == 24), where the pool
  // has nowhere else to live — as on the real Internet, router interfaces
  // are then themselves members of scanned /24s.
  const std::uint64_t pool_first = params_.interface_pool_base;
  const std::uint64_t pool_last =
      pool_first + (std::uint64_t{1} << 24);  // generous upper bound
  if (params_.prefix_bits < 24 && pool_first <= universe_last &&
      universe_first <= pool_last) {
    throw std::invalid_argument(
        "interface pool overlaps the destination universe");
  }

  util::Xoshiro256 rng(params_.seed);

  // --- Provider core: random recursive tree with load-balancer diamonds ---
  const int num_core = params_.effective_core_routers();
  // edge_hops[i]: the template positions appended when a path crosses the
  // edge parent(i) -> i.  The root's single entry is the TTL-1 interface.
  std::vector<std::vector<TemplateHop>> edge_hops(
      static_cast<std::size_t>(num_core));
  std::vector<std::int32_t> parent(static_cast<std::size_t>(num_core), -1);
  std::vector<std::uint16_t> depth(static_cast<std::size_t>(num_core), 0);

  edge_hops[0].push_back({alloc_pool_ip(), 0, 0});
  for (int i = 1; i < num_core; ++i) {
    // Depth-biased attachment: the deepest of `tree_attach_draws` candidates
    // becomes the parent, stretching routes toward realistic hop counts.
    std::int32_t chosen =
        static_cast<std::int32_t>(rng.bounded(static_cast<std::uint64_t>(i)));
    for (int draw = 1; draw < params_.tree_attach_draws; ++draw) {
      const auto candidate = static_cast<std::int32_t>(
          rng.bounded(static_cast<std::uint64_t>(i)));
      if (depth[static_cast<std::size_t>(candidate)] >
          depth[static_cast<std::size_t>(chosen)]) {
        chosen = candidate;
      }
    }
    parent[static_cast<std::size_t>(i)] = chosen;
    depth[static_cast<std::size_t>(i)] =
        static_cast<std::uint16_t>(depth[static_cast<std::size_t>(chosen)] + 1);
    auto& hops = edge_hops[static_cast<std::size_t>(i)];
    if (rng.chance(params_.diamond_fraction)) {
      const std::uint8_t width =
          rng.chance(params_.diamond_three_way_fraction) ? 3 : 2;
      const std::uint64_t edge_key = rng();
      const std::uint32_t mid_base = next_pool_ip_;
      next_pool_ip_ += width;  // parallel mid-router interfaces
      const std::uint32_t child_base = next_pool_ip_;
      next_pool_ip_ += width;  // per-branch in-interfaces of the child
      hops.push_back({mid_base, width, edge_key});
      hops.push_back({child_base, width, edge_key});
    } else {
      hops.push_back({alloc_pool_ip(), 0, 0});
    }
  }

  // Builds one stub with the legacy draw order (path off the core tree,
  // access chain, multihoming, spine, middleboxes, filtered tail) — shared
  // between the per-block materialized build and the succinct template pool.
  const auto build_stub = [&](util::Xoshiro256& r) {
    Stub stub;

    // Provider path: root .. attachment router, expanded edge templates.
    const auto attach = static_cast<std::int32_t>(
        r.bounded(static_cast<std::uint64_t>(num_core)));
    std::vector<std::int32_t> ancestry;
    for (std::int32_t router = attach; router >= 0;
         router = parent[static_cast<std::size_t>(router)]) {
      ancestry.push_back(router);
    }
    for (auto it = ancestry.rbegin(); it != ancestry.rend(); ++it) {
      const auto& hops = edge_hops[static_cast<std::size_t>(*it)];
      stub.path.insert(stub.path.end(), hops.begin(), hops.end());
    }

    // Access chain between the core and the gateway, then the gateway.
    const int chain =
        1 + static_cast<int>(r.bounded(
                static_cast<std::uint64_t>(params_.max_access_chain)));
    for (int i = 0; i < chain - 1; ++i) {
      stub.path.push_back({alloc_pool_ip(), 0, 0});
    }
    if (r.chance(params_.stub_multihome_prob)) {
      // Multihomed stub: a wide per-flow ECMP fan feeds the gateway (§5.2).
      const auto width = static_cast<std::uint8_t>(
          params_.multihome_min_width +
          static_cast<int>(r.bounded(static_cast<std::uint64_t>(
              params_.multihome_max_width - params_.multihome_min_width + 1))));
      const std::uint64_t edge_key = r();
      const std::uint32_t mid_base = next_pool_ip_;
      next_pool_ip_ += width;
      const std::uint32_t child_base = next_pool_ip_;
      next_pool_ip_ += width;
      stub.path.push_back({mid_base, width, edge_key});
      stub.path.push_back({child_base, width, edge_key});
    } else {
      stub.path.push_back({alloc_pool_ip(), 0, 0});
    }
    stub.path.push_back({alloc_pool_ip(), 0, 0});  // gateway in-interface

    stub.spine_base = static_cast<std::uint8_t>(
        r.bounded(static_cast<std::uint64_t>(params_.max_spine + 1)));
    for (auto& ip : stub.spine_ips) ip = alloc_pool_ip();

    if (r.chance(params_.ttl_reset_middlebox_prob)) {
      stub.mbox_reset =
          r.chance(0.5) ? params_.ttl_reset_low : params_.ttl_reset_high;
    }
    stub.rewrite = r.chance(params_.rewrite_middlebox_prob);

    apply_filtered_tail(stub, r);
    return stub;
  };

  const std::uint32_t num_prefixes = params_.num_prefixes();

  if (params_.topology_mode != TopologyMode::kMaterialized) {
    // --- Succinct modes: a fixed pool of shared path templates -------------
    // Every per-prefix attribute (block carve, routed/dark, template
    // assignment, dark-tail shape) is derived on demand from the seeds —
    // see derive_entry().  kSuccinctMaterialized additionally expands the
    // derivation into per-prefix tables to prove bit-equality.
    const int pool_bits = std::clamp(params_.template_pool_bits, 0, 16);
    const std::uint32_t pool = std::uint32_t{1} << pool_bits;
    stubs_.reserve(pool);
    for (std::uint32_t i = 0; i < pool; ++i) {
      stubs_.push_back(build_stub(rng));
    }
    if (params_.topology_mode == TopologyMode::kSuccinctMaterialized) {
      materialized_entries_.resize(num_prefixes);
      for (std::uint32_t offset = 0; offset < num_prefixes; ++offset) {
        materialized_entries_[offset] = derive_entry(offset);
      }
    }
    return;
  }

  // --- Carve the universe into advertised blocks -------------------------
  prefix_map_.assign(num_prefixes, kUnmapped);

  struct PendingBlock {
    std::uint32_t start;
    std::uint32_t size;
    bool routed;
  };
  std::vector<PendingBlock> blocks;
  std::uint32_t cursor = 0;
  while (cursor < num_prefixes) {
    const int bits = static_cast<int>(
        rng.bounded(static_cast<std::uint64_t>(params_.max_block_bits + 1)));
    const std::uint32_t size = std::min(std::uint32_t{1} << bits,
                                        num_prefixes - cursor);
    blocks.push_back({cursor, size, rng.chance(params_.routed_fraction)});
    cursor += size;
  }
  // Ensure at least one stub exists so dark blocks have a provider.
  if (std::none_of(blocks.begin(), blocks.end(),
                   [](const PendingBlock& b) { return b.routed; })) {
    blocks.front().routed = true;
  }

  // --- Build stubs ----------------------------------------------------------
  for (const auto& block : blocks) {
    if (!block.routed) continue;
    const auto stub_id = static_cast<std::int32_t>(stubs_.size());
    stubs_.push_back(build_stub(rng));
    for (std::uint32_t p = block.start; p < block.start + block.size; ++p) {
      prefix_map_[p] = stub_id;
    }
  }

  // --- Dark (unrouted) blocks: probes die inside a provider ----------------
  for (const auto& block : blocks) {
    if (block.routed) continue;
    DarkBlock dark;
    dark.provider_stub = static_cast<std::uint32_t>(
        rng.bounded(static_cast<std::uint64_t>(stubs_.size())));
    dark.drop_back = static_cast<std::uint8_t>(rng.bounded(3));
    dark.loop = rng.chance(params_.dark_loop_prob);
    const auto dark_id = static_cast<std::int32_t>(dark_blocks_.size());
    dark_blocks_.push_back(dark);
    for (std::uint32_t p = block.start; p < block.start + block.size; ++p) {
      prefix_map_[p] = -dark_id - 2;
    }
  }
}

FR_HOT Topology::SuccinctEntry Topology::derive_entry(
    std::uint32_t offset) const noexcept {
  // Superblock-hashed carve: every superblock of 2^max_block_bits prefixes
  // is split into equal aligned blocks of 2^bits, bits drawn per superblock.
  // Alignment makes the block start derivable from the offset alone — the
  // whole carve costs zero storage.
  const std::uint32_t superblock =
      offset >> static_cast<unsigned>(params_.max_block_bits);
  const auto bits = static_cast<unsigned>(util::stable_bounded(
      seed_block_, superblock,
      static_cast<std::uint64_t>(params_.max_block_bits + 1)));
  const std::uint32_t block_start = offset & ~((std::uint32_t{1} << bits) - 1);

  SuccinctEntry entry;
  entry.block_key = block_start;
  entry.routed =
      util::stable_chance(seed_routed_, block_start, params_.routed_fraction);
  const auto pool = static_cast<std::uint64_t>(stubs_.size());
  if (entry.routed) {
    entry.stub = static_cast<std::uint32_t>(
        util::stable_bounded(seed_assign_, block_start, pool));
  } else {
    entry.stub = static_cast<std::uint32_t>(
        util::stable_bounded(seed_dark_prov_, block_start, pool));
    entry.drop_back = static_cast<std::uint8_t>(
        util::stable_bounded(seed_dark_back_, block_start, 3));
    entry.dark_loop = util::stable_chance(seed_dark_loop_, block_start,
                                          params_.dark_loop_prob);
  }
  return entry;
}

FR_HOT Topology::SuccinctEntry Topology::entry_at(
    std::uint32_t offset) const noexcept {
  if (params_.topology_mode == TopologyMode::kSuccinctMaterialized) {
    return materialized_entries_[offset];
  }
  return derive_entry(offset);
}

void Topology::apply_filtered_tail(const Stub& stub, util::Xoshiro256& rng) {
  // The last `tail` router hops before the segment appliances never answer:
  // spine hops first (nearest the appliance), then the gateway, then access
  // routers.  Forward probing needs GapLimit >= tail to see past them.
  const auto draw = static_cast<int>(rng.bounded(100));
  int tail = 5;
  for (int length = 0; length < 5; ++length) {
    if (draw < params_.filtered_tail_cum_pct[length]) {
      tail = length;
      break;
    }
  }
  if (tail == 0) return;
  int remaining = tail;
  for (int spine = static_cast<int>(stub.spine_base) - 1;
       spine >= 0 && remaining > 0; --spine, --remaining) {
    forced_silent_.insert(stub.spine_ips[static_cast<std::size_t>(spine)]);
  }
  for (auto it = stub.path.rbegin(); it != stub.path.rend() && remaining > 0;
       ++it) {
    if (it->width != 0) break;  // stop at a load-balancer diamond
    forced_silent_.insert(it->base_ip);
    --remaining;
  }
}

FR_HOT std::uint32_t Topology::template_hop_ip(const TemplateHop& hop,
                                        std::uint64_t flow) const noexcept {
  if (hop.width == 0) return hop.base_ip;
  const std::uint64_t branch =
      util::mix64(hop.edge_key ^ flow) % hop.width;
  return hop.base_ip + static_cast<std::uint32_t>(branch);
}

FR_HOT int Topology::expand_template(
    const Stub& stub, std::uint64_t flow, int limit,
    std::array<std::uint32_t, Route::kMaxHops>& hops) const noexcept {
  const int count =
      std::min(limit, static_cast<int>(stub.path.size()));
  for (int i = 0; i < count; ++i) {
    hops[static_cast<std::size_t>(i)] =
        template_hop_ip(stub.path[static_cast<std::size_t>(i)], flow);
  }
  return count;
}

FR_HOT bool Topology::in_universe(net::Ipv4Address address) const noexcept {
  const std::uint32_t prefix = net::prefix24_index(address);
  return prefix >= params_.first_prefix && prefix <= params_.last_prefix();
}

FR_HOT bool Topology::prefix_routed(std::uint32_t prefix_index) const noexcept {
  if (prefix_index < params_.first_prefix ||
      prefix_index > params_.last_prefix()) {
    return false;
  }
  const std::uint32_t offset = prefix_index - params_.first_prefix;
  if (params_.topology_mode == TopologyMode::kMaterialized) {
    return prefix_map_[offset] >= 0;
  }
  return entry_at(offset).routed;
}

FR_HOT std::uint32_t Topology::appliance_address(
    std::uint32_t prefix_index) const noexcept {
  return (prefix_index << 8) | kApplianceOctet;
}

FR_HOT int Topology::spine_length_keyed(int spine_base, std::uint64_t key_id,
                                        std::int64_t epoch) const noexcept {
  int length = spine_base;
  const std::uint64_t key =
      util::hash_combine(key_id, static_cast<std::uint64_t>(epoch));
  if (util::stable_chance(seed_dyn_, key, params_.route_dynamics_prob)) {
    const bool up = (util::hash_combine(seed_dyn_, key) & 1) != 0;
    length += up ? 1 : -1;
  }
  // Upper bound is the fixed Stub::spine_ips capacity.
  return std::clamp(length, 0, 4);
}

FR_HOT int Topology::spine_length(std::uint32_t stub_id,
                           std::int64_t epoch) const noexcept {
  // Legacy dynamics key: the stub index itself.  Succinct modes key by the
  // block start instead (templates are shared) — see resolve().
  return spine_length_keyed(stubs_[stub_id].spine_base, stub_id, epoch);
}

FR_HOT std::uint8_t Topology::internal_octet(std::uint32_t prefix_index,
                                      int level) const noexcept {
  const std::uint64_t key =
      util::hash_combine(prefix_index, static_cast<std::uint64_t>(level));
  return static_cast<std::uint8_t>(
      2 + util::stable_bounded(seed_internal_, key, 253));
}

FR_HOT bool Topology::stub_is_responsive(std::uint32_t prefix_index) const noexcept {
  if (prefix_index < params_.first_prefix ||
      prefix_index > params_.last_prefix()) {
    return false;
  }
  const std::uint32_t offset = prefix_index - params_.first_prefix;
  if (params_.topology_mode == TopologyMode::kMaterialized) {
    const std::int32_t entry = prefix_map_[offset];
    if (entry < 0) return false;
    return util::stable_chance(util::hash_combine(seed_host_, 0x636c7573),
                               static_cast<std::uint64_t>(entry),
                               params_.stub_responsive_prob);
  }
  // Succinct modes: responsiveness belongs to the advertised block, not the
  // shared template, so key on the block start.
  const SuccinctEntry e = entry_at(offset);
  if (!e.routed) return false;
  return util::stable_chance(util::hash_combine(seed_host_, 0x636c7573),
                             static_cast<std::uint64_t>(e.block_key),
                             params_.stub_responsive_prob);
}

FR_HOT bool Topology::host_exists(net::Ipv4Address address) const noexcept {
  const std::uint32_t prefix = net::prefix24_index(address);
  if (!prefix_routed(prefix)) return false;
  if ((address.value() & 0xFF) == kApplianceOctet) return true;
  const double exist_prob = stub_is_responsive(prefix)
                                ? params_.host_exist_prob_responsive
                                : params_.host_exist_prob_quiet;
  return util::stable_chance(seed_host_, address.value(), exist_prob);
}

FR_HOT bool Topology::host_responds(net::Ipv4Address address,
                             std::uint8_t protocol) const noexcept {
  if (!host_exists(address)) return false;
  return host_responds_delivered(address, protocol);
}

FR_HOT bool Topology::host_exists_routed(net::Ipv4Address address,
                                         std::uint64_t dyn_key) const noexcept {
  const bool responsive =
      util::stable_chance(util::hash_combine(seed_host_, 0x636c7573), dyn_key,
                          params_.stub_responsive_prob);
  const double exist_prob = responsive ? params_.host_exist_prob_responsive
                                       : params_.host_exist_prob_quiet;
  return util::stable_chance(seed_host_, address.value(), exist_prob);
}

FR_HOT bool Topology::host_responds_delivered(
    net::Ipv4Address address, std::uint8_t protocol) const noexcept {
  const bool is_appliance = (address.value() & 0xFF) == kApplianceOctet;
  if (protocol == net::kProtoTcp) {
    const double p = is_appliance ? params_.appliance_tcp_response_prob
                                  : params_.host_tcp_response_prob;
    return util::stable_chance(seed_tcp_, address.value(), p);
  }
  const double p = is_appliance ? params_.appliance_udp_response_prob
                                : params_.host_udp_response_prob;
  return util::stable_chance(seed_udp_, address.value(), p);
}

FR_HOT bool Topology::interface_responds(std::uint32_t interface_ip,
                                  std::uint8_t protocol) const noexcept {
  if (forced_silent_.contains(interface_ip)) return false;
  if (util::stable_chance(seed_silent_, interface_ip,
                          params_.interface_silent_prob)) {
    return false;
  }
  if (protocol == net::kProtoTcp &&
      util::stable_chance(seed_silent_tcp_, interface_ip,
                          params_.interface_tcp_extra_silent_prob)) {
    return false;
  }
  return true;
}

FR_HOT void Topology::annotate_silence(const Route& route, std::uint8_t protocol,
                                RouteSilence& out) const noexcept {
  std::uint64_t mask = 0;
  for (int i = 0; i < route.num_hops; ++i) {
    if (!interface_responds(route.hops[static_cast<std::size_t>(i)],
                            protocol)) {
      mask |= std::uint64_t{1} << i;
    }
  }
  out.hop_silent = mask;
  out.hop_known = route.num_hops >= 64
                      ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << route.num_hops) - 1;
  out.loop_a_silent =
      route.loops && !interface_responds(route.loop_a, protocol);
  out.loop_b_silent =
      route.loops && !interface_responds(route.loop_b, protocol);
  out.loop_known = true;
  out.host_answers =
      route.delivers &&
      host_responds_delivered(net::Ipv4Address(route.delivered_address),
                              protocol);
  out.host_known = true;
}

FR_HOT bool Topology::hop_silent_at(const Route& route, int pos,
                                    std::uint8_t protocol,
                                    RouteSilence& plan) const noexcept {
  if (pos <= route.num_hops) {
    const std::uint64_t bit = std::uint64_t{1} << (pos - 1);
    if ((plan.hop_known & bit) == 0) {
      if (!interface_responds(route.hops[static_cast<std::size_t>(pos - 1)],
                              protocol)) {
        plan.hop_silent |= bit;
      }
      plan.hop_known |= bit;
    }
    return (plan.hop_silent & bit) != 0;
  }
  if (!plan.loop_known) {
    plan.loop_a_silent =
        route.loops && !interface_responds(route.loop_a, protocol);
    plan.loop_b_silent =
        route.loops && !interface_responds(route.loop_b, protocol);
    plan.loop_known = true;
  }
  return ((pos - route.num_hops) % 2 == 1) ? plan.loop_a_silent
                                           : plan.loop_b_silent;
}

FR_HOT bool Topology::host_answers_lazy(const Route& route,
                                        std::uint8_t protocol,
                                        RouteSilence& plan) const noexcept {
  if (!plan.host_known) {
    plan.host_answers =
        route.delivers &&
        host_responds_delivered(net::Ipv4Address(route.delivered_address),
                                protocol);
    plan.host_known = true;
  }
  return plan.host_answers;
}

FR_HOT bool Topology::resolve(net::Ipv4Address destination, std::uint64_t flow,
                       std::int64_t epoch, Route& route) const noexcept {
  if (!in_universe(destination)) return false;
  const std::uint32_t prefix = net::prefix24_index(destination);
  const std::uint32_t offset = prefix - params_.first_prefix;
  route.reset();

  // Owner extraction: which path template serves this prefix, whether the
  // block is routed or dark, and the dynamics key.  kMaterialized reads the
  // per-prefix tables (legacy, bit-identical); succinct modes derive the same
  // shape from (offset, seeds) with zero per-prefix storage.
  const Stub* stub_ptr;
  bool routed;
  std::uint8_t drop_back = 0;
  bool dark_loop = false;
  std::uint64_t dyn_key = 0;
  if (params_.topology_mode == TopologyMode::kMaterialized) {
    const std::int32_t entry = prefix_map_[offset];
    if (entry <= -2) {
      const DarkBlock& dark =
          dark_blocks_[static_cast<std::size_t>(-entry - 2)];
      stub_ptr = &stubs_[dark.provider_stub];
      routed = false;
      drop_back = dark.drop_back;
      dark_loop = dark.loop;
    } else {
      stub_ptr = &stubs_[static_cast<std::size_t>(entry)];
      routed = true;
      dyn_key = static_cast<std::uint64_t>(entry);
    }
  } else {
    const SuccinctEntry e = entry_at(offset);
    stub_ptr = &stubs_[e.stub];
    routed = e.routed;
    drop_back = e.drop_back;
    dark_loop = e.dark_loop;
    dyn_key = e.block_key;
  }

  if (!routed) {
    // Dark space: the path follows the provider of a nearby stub and dies
    // drop_back hops before that stub's gateway.
    const Stub& provider = *stub_ptr;
    const int full = static_cast<int>(provider.path.size());
    const int drop_at = std::max(1, full - drop_back);
    route.num_hops = expand_template(provider, flow, drop_at, route.hops);
    if (dark_loop && route.num_hops >= 2) {
      route.loops = true;
      route.loop_a = route.hops[static_cast<std::size_t>(route.num_hops - 1)];
      route.loop_b = route.hops[static_cast<std::size_t>(route.num_hops - 2)];
    }
    return true;
  }

  const Stub& stub = *stub_ptr;
  const int gateway_pos =
      expand_template(stub, flow, Route::kMaxHops, route.hops);
  if (stub.mbox_reset != 0) {
    route.middlebox_pos = gateway_pos;
    route.middlebox_reset = stub.mbox_reset;
  }

  const std::uint32_t appliance = appliance_address(prefix);
  const std::uint8_t host_octet =
      static_cast<std::uint8_t>(destination.value() & 0xFF);

  if (stub.rewrite) {
    // A NAT-ish middlebox at the gateway rewrites every inbound destination
    // to the segment appliance (§5.3).
    int pos = gateway_pos;
    const int spine = spine_length_keyed(stub.spine_base, dyn_key, epoch);
    for (int j = 0; j < spine && pos < Route::kMaxHops; ++j) {
      route.hops[static_cast<std::size_t>(pos++)] = stub.spine_ips[
          static_cast<std::size_t>(j)];
    }
    route.num_hops = pos;
    route.delivers = true;
    route.delivered_address = appliance;
    route.rewritten = destination.value() != appliance;
    return true;
  }

  if (host_octet != kApplianceOctet &&
      !host_exists_routed(destination, dyn_key)) {
    // Unassigned address in a routed prefix.
    if (util::stable_chance(util::hash_combine(seed_loop_, 0x6c616e),
                            destination.value(),
                            params_.unassigned_reach_appliance_prob)) {
      // The appliance forwards onto the dead LAN: the probe dies one hop
      // beyond it, so the route to an unassigned random target measures
      // *longer* than the route to the prefix's appliance (§5.1).
      int pos = gateway_pos;
      const int spine =
          spine_length_keyed(stub.spine_base, dyn_key, epoch);
      for (int j = 0; j < spine && pos < Route::kMaxHops; ++j) {
        route.hops[static_cast<std::size_t>(pos++)] =
            stub.spine_ips[static_cast<std::size_t>(j)];
      }
      if (pos < Route::kMaxHops) {
        route.hops[static_cast<std::size_t>(pos++)] = appliance;
      }
      route.num_hops = pos;
      return true;
    }
    // Otherwise the gateway ingress-filters it...
    route.num_hops = gateway_pos;
    if (route.num_hops >= 2 &&
        util::stable_chance(seed_loop_, destination.value(),
                            params_.dark_loop_prob)) {
      // ...unless the stub default-routes it back to the provider (§5.1).
      route.loops = true;
      route.loop_a = route.hops[static_cast<std::size_t>(route.num_hops - 1)];
      route.loop_b = route.hops[static_cast<std::size_t>(route.num_hops - 2)];
    }
    return true;
  }

  int pos = gateway_pos;
  const int spine = spine_length_keyed(stub.spine_base, dyn_key, epoch);
  for (int j = 0; j < spine && pos < Route::kMaxHops; ++j) {
    route.hops[static_cast<std::size_t>(pos++)] =
        stub.spine_ips[static_cast<std::size_t>(j)];
  }

  if (host_octet == kApplianceOctet) {
    // The appliance itself is the destination: the route ends at the
    // segment entrance — the hitlist bias in action (§5.1).
    route.num_hops = pos;
    route.delivers = true;
    route.delivered_address = destination.value();
    return true;
  }

  // Assigned host 0..max_host_depth hops behind the appliance.
  if (pos < Route::kMaxHops) {
    route.hops[static_cast<std::size_t>(pos++)] = appliance;
  }
  const auto depth_draw = static_cast<int>(
      util::stable_bounded(seed_depth_, destination.value(), 100));
  int depth = 3;
  if (depth_draw < params_.host_depth_cum_pct_0) {
    depth = 0;
  } else if (depth_draw < params_.host_depth_cum_pct_1) {
    depth = 1;
  } else if (depth_draw < params_.host_depth_cum_pct_2) {
    depth = 2;
  }
  depth = std::min(depth, params_.max_host_depth);
  for (int level = 1; level <= depth && pos < Route::kMaxHops; ++level) {
    route.hops[static_cast<std::size_t>(pos++)] =
        (prefix << 8) | internal_octet(prefix, level);
  }
  route.num_hops = pos;
  route.delivers = true;
  route.delivered_address = destination.value();
  return true;
}

std::optional<int> Topology::trigger_ttl(net::Ipv4Address destination,
                                         std::uint64_t flow,
                                         std::int64_t epoch) const noexcept {
  Route route;
  if (!resolve(destination, flow, epoch, route) || !route.delivers) {
    return std::nullopt;
  }
  return route.num_hops + 1;
}

std::vector<std::uint32_t> Topology::generate_hitlist() const {
  const std::uint32_t num_prefixes = params_.num_prefixes();
  std::vector<std::uint32_t> hitlist(num_prefixes, 0);
  for (std::uint32_t i = 0; i < num_prefixes; ++i) {
    const std::uint32_t prefix = params_.first_prefix + i;
    if (!prefix_routed(prefix)) continue;  // census skips dark space
    const double present_prob = stub_is_responsive(prefix)
                                    ? params_.hitlist_present_responsive
                                    : params_.hitlist_present_quiet;
    if (!util::stable_chance(seed_hitlist_, prefix, present_prob)) {
      continue;
    }
    if (util::stable_chance(util::hash_combine(seed_hitlist_, 1), prefix,
                            params_.hitlist_is_appliance_prob)) {
      hitlist[i] = appliance_address(prefix);
      continue;
    }
    // Census found a responsive interior host: pick the first assigned
    // responsive candidate among a few deterministic octets.
    std::uint32_t chosen = appliance_address(prefix);
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint8_t octet = static_cast<std::uint8_t>(
          2 + util::stable_bounded(util::hash_combine(seed_hitlist_, 2),
                                   util::hash_combine(prefix, attempt), 253));
      const net::Ipv4Address candidate((prefix << 8) | octet);
      if (host_exists(candidate) &&
          host_responds(candidate, net::kProtoUdp)) {
        chosen = candidate.value();
        break;
      }
    }
    hitlist[i] = chosen;
  }
  return hitlist;
}

}  // namespace flashroute::sim
