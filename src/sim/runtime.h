// Virtual-time ScanRuntime over the Internet simulator.
//
// `send` advances the virtual clock by one probe slot (1/pps — 10 µs at the
// paper's 100 Kpps), hands the packet to SimNetwork, and queues the response
// (if any) for delivery at its simulated arrival time.  `drain` delivers the
// responses due by the current virtual instant, deterministically emulating
// the paper's decoupled sender/receiver threads: a response is visible to
// the engine exactly as soon as its RTT has elapsed, never earlier.

#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/runtime.h"
#include "core/sharded_tracer.h"
#include "sim/network.h"
#include "util/clock.h"

namespace flashroute::sim {

class SimScanRuntime final : public core::ScanRuntime {
 public:
  SimScanRuntime(SimNetwork& network, double probes_per_second,
                 util::Nanos start_time = 0)
      : network_(network),
        clock_(start_time),
        probe_interval_(static_cast<util::Nanos>(
            static_cast<double>(util::kSecond) / probes_per_second)) {}

  util::Nanos now() const noexcept override { return clock_.now(); }

  void send(std::span<const std::byte> packet) override {
    clock_.advance(probe_interval_);
    ++packets_sent_;
    if (auto delivery = network_.process(packet, clock_.now())) {
      pending_.push_back(Pending{delivery->arrival, next_seq_++,
                                 std::move(delivery->packet)});
      std::push_heap(pending_.begin(), pending_.end(), std::greater<>{});
    }
  }

  void drain(const Sink& sink) override { deliver_due(clock_.now(), sink); }

  void idle_until(util::Nanos t, const Sink& sink) override {
    deliver_due(t, sink);
    clock_.advance_to(t);
  }

  util::SimClock& clock() noexcept { return clock_; }

 private:
  struct Pending {
    util::Nanos arrival;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous arrivals
    std::vector<std::byte> packet;

    bool operator>(const Pending& other) const noexcept {
      if (arrival != other.arrival) return arrival > other.arrival;
      return seq > other.seq;
    }
  };

  void deliver_due(util::Nanos deadline, const Sink& sink) {
    // An explicit binary heap instead of std::priority_queue: pop_heap moves
    // the minimum to the back, where it can be *moved* out — top() is const
    // on priority_queue, which used to force a copy of every packet payload.
    while (!pending_.empty() && pending_.front().arrival <= deadline) {
      std::pop_heap(pending_.begin(), pending_.end(), std::greater<>{});
      Pending item = std::move(pending_.back());
      pending_.pop_back();
      clock_.advance_to(item.arrival);
      sink(item.packet, item.arrival);
    }
  }

  SimNetwork& network_;
  util::SimClock clock_;
  util::Nanos probe_interval_;
  std::uint64_t next_seq_ = 0;
  /// Min-heap on (arrival, seq) maintained with std::push_heap/pop_heap.
  std::vector<Pending> pending_;
};

/// Virtual-time ShardRuntimeProvider: one (SimNetwork, SimScanRuntime) lane
/// per logical shard, preallocated from ShardedTracer::plan so runtime_for
/// is a lock-free lookup from any worker thread.  Topology is immutable and
/// safely shared; everything mutable (network state, virtual clock, pending
/// responses) is shard-private, so each shard's sub-scan is exactly as
/// deterministic as an unsharded virtual-time scan — which is what makes the
/// merged result invariant under the worker count.
class SimShardRuntimeProvider final : public core::ShardRuntimeProvider {
 public:
  SimShardRuntimeProvider(const Topology& topology,
                          const core::ShardedTracerConfig& config) {
    const auto shards = core::ShardedTracer::plan(config);
    lanes_.reserve(shards.size());
    for (const core::ShardInfo& shard : shards) {
      lanes_.push_back(
          std::make_unique<Lane>(topology, shard.probes_per_second));
    }
  }

  core::ScanRuntime& runtime_for(const core::ShardInfo& shard) override {
    return lanes_[static_cast<std::size_t>(shard.index)]->runtime;
  }

  /// Aggregated ground-truth statistics across all shard networks (only
  /// meaningful after run() — workers have stopped touching their lanes).
  NetworkStats stats() const {
    NetworkStats total;
    for (const auto& lane : lanes_) {
      const NetworkStats& s = lane->network.stats();
      total.probes += s.probes;
      total.malformed += s.malformed;
      total.out_of_universe += s.out_of_universe;
      total.time_exceeded_sent += s.time_exceeded_sent;
      total.destination_responses += s.destination_responses;
      total.silent_interface += s.silent_interface;
      total.silent_host += s.silent_host;
      total.rate_limited += s.rate_limited;
      total.dropped_dark += s.dropped_dark;
    }
    return total;
  }

 private:
  struct Lane {
    Lane(const Topology& topology, double pps)
        : network(topology), runtime(network, pps) {}

    SimNetwork network;
    SimScanRuntime runtime;
  };

  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace flashroute::sim
