// Virtual-time ScanRuntime over the Internet simulator.
//
// `send` advances the virtual clock by one probe slot (1/pps — 10 µs at the
// paper's 100 Kpps), hands the packet to SimNetwork, and queues the response
// (if any) for delivery at its simulated arrival time.  `drain` delivers the
// responses due by the current virtual instant, deterministically emulating
// the paper's decoupled sender/receiver threads: a response is visible to
// the engine exactly as soon as its RTT has elapsed, never earlier.

#pragma once

#include <queue>
#include <vector>

#include "core/runtime.h"
#include "sim/network.h"
#include "util/clock.h"

namespace flashroute::sim {

class SimScanRuntime final : public core::ScanRuntime {
 public:
  SimScanRuntime(SimNetwork& network, double probes_per_second,
                 util::Nanos start_time = 0)
      : network_(network),
        clock_(start_time),
        probe_interval_(static_cast<util::Nanos>(
            static_cast<double>(util::kSecond) / probes_per_second)) {}

  util::Nanos now() const noexcept override { return clock_.now(); }

  void send(std::span<const std::byte> packet) override {
    clock_.advance(probe_interval_);
    ++packets_sent_;
    if (auto delivery = network_.process(packet, clock_.now())) {
      pending_.push(Pending{delivery->arrival, next_seq_++,
                            std::move(delivery->packet)});
    }
  }

  void drain(const Sink& sink) override { deliver_due(clock_.now(), sink); }

  void idle_until(util::Nanos t, const Sink& sink) override {
    deliver_due(t, sink);
    clock_.advance_to(t);
  }

  util::SimClock& clock() noexcept { return clock_; }

 private:
  struct Pending {
    util::Nanos arrival;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous arrivals
    std::vector<std::byte> packet;

    bool operator>(const Pending& other) const noexcept {
      if (arrival != other.arrival) return arrival > other.arrival;
      return seq > other.seq;
    }
  };

  void deliver_due(util::Nanos deadline, const Sink& sink) {
    while (!pending_.empty() && pending_.top().arrival <= deadline) {
      // std::priority_queue::top is const; the copy is fine for response-
      // sized packets and keeps the heap invariant intact.
      Pending item = pending_.top();
      pending_.pop();
      clock_.advance_to(item.arrival);
      sink(item.packet, item.arrival);
    }
  }

  SimNetwork& network_;
  util::SimClock clock_;
  util::Nanos probe_interval_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> pending_;
};

}  // namespace flashroute::sim
