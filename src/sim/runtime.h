// Virtual-time ScanRuntime over the Internet simulator.
//
// `send` advances the virtual clock by one probe slot (1/pps — 10 µs at the
// paper's 100 Kpps), hands the packet to SimNetwork, and queues the response
// (if any) for delivery at its simulated arrival time.  `drain` delivers the
// responses due by the current virtual instant, deterministically emulating
// the paper's decoupled sender/receiver threads: a response is visible to
// the engine exactly as soon as its RTT has elapsed, never earlier.

#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "core/runtime.h"
#include "core/sharded_tracer.h"
#include "obs/cycle_ledger.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "sim/response_pool.h"
#include "util/annotations.h"
#include "util/clock.h"
#include "util/timing_wheel.h"

namespace flashroute::sim {

class SimScanRuntime final : public core::ScanRuntime {
 public:
  SimScanRuntime(SimNetwork& network, double probes_per_second,
                 util::Nanos start_time = 0)
      : network_(network),
        clock_(start_time),
        probe_interval_(static_cast<util::Nanos>(
            static_cast<double>(util::kSecond) / probes_per_second)),
        min_response_latency_(network.topology().params().rtt_base),
        wheel_(wheel_tick(network, probe_interval_), kWheelSlotBits) {}

  FR_HOT util::Nanos now() const noexcept override { return clock_.now(); }

  [[nodiscard]] FR_HOT bool try_send(
      std::span<const std::byte> packet) override {
    clock_.advance(probe_interval_);
    // Transient local send failure (fault plane): the pacing slot is
    // consumed but the packet never reaches the simulated network.
    if (FaultPlane* plane = network_.fault_plane();
        plane != nullptr && plane->fail_send(clock_.now())) {
      return false;
    }
    ++packets_sent_;
    // Encode the response (if any) straight into a recycled pool slot; the
    // delivery heap carries only {slot, size}, so the steady-state sim path
    // moves no payload bytes and allocates nothing.
    const ResponsePool::Slot slot = pool_.acquire();
    if (auto response =
            network_.process_into(packet, clock_.now(), pool_.buffer(slot))) {
      push_pending(response->arrival, slot,
                   static_cast<std::uint32_t>(response->size));
      if (response->duplicate_arrival > 0) {
        // Fault-plane duplication: a second pooled copy of the same bytes,
        // delivered at its own (later) arrival time.
        const ResponsePool::Slot copy = pool_.acquire();
        std::memcpy(pool_.buffer(copy).data(), pool_.buffer(slot).data(),
                    response->size);
        push_pending(response->duplicate_arrival, copy,
                     static_cast<std::uint32_t>(response->size));
      }
    } else {
      pool_.release(slot);
    }
    return true;
  }

  /// Batched submit: the scalar try_send loop with its per-probe virtual
  /// dispatch, clock bump, and pool bookkeeping hoisted out.  Packet k is
  /// stamped with send time now() + (k+1) * interval — exactly the instants
  /// a scalar loop would have produced — the fault plane's fail_send draws
  /// run against those same instants, and SimNetwork::process_batch emits
  /// responses in scalar claim order, so a batched scan is byte-identical
  /// to the scalar same-seed scan.
  [[nodiscard]] FR_HOT std::uint64_t try_send_batch(
      const core::ProbeBatch& batch) override {
    const util::Nanos first = clock_.now();
    std::uint64_t ok =
        batch.count() >= 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << batch.count()) - 1;
    if (FaultPlane* plane = network_.fault_plane()) {
      for (std::uint32_t k = 0; k < batch.count(); ++k) {
        if (plane->fail_send(first + (k + 1) * probe_interval_)) {
          ok &= ~(std::uint64_t{1} << k);
        }
      }
    }
    clock_.advance(batch.count() * probe_interval_);
    packets_sent_ += static_cast<std::uint64_t>(std::popcount(ok));
    const util::Nanos process_start =
        cycles_ != nullptr ? cycle_clock_.now() : 0;
    const std::uint32_t produced = network_.process_batch(
        batch, ok, first, probe_interval_, pool_, batch_out_.data());
    if (cycles_ != nullptr) {
      cycles_->add(obs::CycleLedger::kProcess,
                   cycle_clock_.now() - process_start, batch.count());
    }
    for (std::uint32_t i = 0; i < produced; ++i) {
      const BatchDelivery& d = batch_out_[i];
      wheel_.schedule(d.arrival, InFlight{d.arrival, d.slot, d.size});
    }
    return ok;
  }

  /// Attaches a per-stage cycle ledger (obs/cycle_ledger.h): try_send_batch
  /// brackets SimNetwork::process_batch as the kProcess stage, letting the
  /// bench split the engine's kSend total into submit vs network cost.
  void set_cycle_ledger(obs::CycleLedger* cycles) noexcept {
    cycles_ = cycles;
  }

  /// How many probes a gather loop may stage before the next submit without
  /// perturbing determinism: bounded by the earliest pending arrival (no
  /// response may come due at a destination boundary the batch skips) and
  /// by the minimum response latency (no intra-batch response may land
  /// inside the batch's own window).  Both bounds leave the final
  /// destination of a batch free to exceed the budget by one probe — the
  /// same slack a scalar loop has between the two probes of a destination.
  FR_HOT std::uint32_t batch_budget() const noexcept override {
    // Clamp the interval for the bound arithmetic only: a sub-nanosecond
    // pacing interval (unthrottled tests) truncates to 0, and claiming 1 ns
    // instead only makes both bounds more conservative.
    const util::Nanos interval = std::max<util::Nanos>(probe_interval_, 1);
    std::int64_t budget = core::ProbeBatch::kMaxPackets;
    budget =
        std::min<std::int64_t>(budget, min_response_latency_ / interval + 1);
    if (const auto next = wheel_.next_deadline()) {
      const util::Nanos delta = *next - clock_.now();
      if (delta <= 0) return 1;
      budget =
          std::min<std::int64_t>(budget, (delta + interval - 1) / interval);
    }
    return static_cast<std::uint32_t>(std::max<std::int64_t>(budget, 1));
  }

  /// Virtual-clock instant the k-th packet of the next batch will carry as
  /// its encode timestamp: a scalar loop encodes each probe *before* the
  /// send that advances the clock, so packet k sees k elapsed probe slots.
  FR_HOT util::Nanos send_time_of(std::uint32_t k) const noexcept override {
    return clock_.now() + static_cast<util::Nanos>(k) * probe_interval_;
  }

  /// Adaptive-backoff hook: subsequent sends pace at the new rate.
  void set_rate(double probes_per_second) override {
    probe_interval_ = static_cast<util::Nanos>(
        static_cast<double>(util::kSecond) / probes_per_second);
  }

  FR_HOT void drain(const Sink& sink) override {
    deliver_due(clock_.now(), sink);
  }

  FR_HOT void idle_until(util::Nanos t, const Sink& sink) override {
    deliver_due(t, sink);
    clock_.advance_to(t);
  }

  util::SimClock& clock() noexcept { return clock_; }

  /// Registers this runtime's observability gauges on `lane` of a metrics
  /// registry (DESIGN.md §7): the sim network's rate-limit drops and
  /// route-cache hit rate, plus response-pool occupancy.  The gauge
  /// callbacks read plain counters owned by this runtime's scan thread;
  /// they are sampled either on that thread (interval ticks) or after the
  /// scan (the summary snapshot), so sim scans stay deterministic.  This —
  /// not bespoke accessors on SimNetwork — is how scan-facing tooling
  /// observes the sim internals.
  void register_gauges(obs::MetricsRegistry& registry, int lane) const {
    const SimNetwork* network = &network_;
    registry.add_gauge("sim.rate_limit_drops", lane, [network] {
      return static_cast<double>(network->stats().rate_limited);
    });
    registry.add_gauge("sim.route_cache_hits", lane, [network] {
      return static_cast<double>(network->stats().route_cache_hits);
    });
    registry.add_gauge("sim.route_cache_misses", lane, [network] {
      return static_cast<double>(network->stats().route_cache_misses);
    });
    registry.add_gauge("sim.route_cache_hit_rate", lane, [network] {
      const NetworkStats& s = network->stats();
      const std::uint64_t lookups = s.route_cache_hits + s.route_cache_misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(s.route_cache_hits) /
                                static_cast<double>(lookups);
    });
    const ResponsePool* pool = &pool_;
    const util::TimingWheel<InFlight>* wheel = &wheel_;
    registry.add_gauge("sim.response_pool_slots", lane, [pool] {
      return static_cast<double>(pool->capacity());
    });
    registry.add_gauge("sim.responses_in_flight", lane, [wheel] {
      return static_cast<double>(wheel->size());
    });
    // Fault-plane tallies, registered only when the plane is active so
    // zero-fault telemetry streams stay byte-identical to pre-fault builds.
    if (const FaultPlane* plane = network_.fault_plane()) {
      registry.add_gauge("sim.faults_injected", lane, [plane] {
        return static_cast<double>(plane->stats().total());
      });
      registry.add_gauge("sim.fault_probes_dropped", lane, [plane] {
        const FaultPlane::Stats& s = plane->stats();
        return static_cast<double>(s.probes_lost + s.probes_blackholed +
                                   s.probes_flap_dropped);
      });
      registry.add_gauge("sim.fault_responses_dropped", lane, [plane] {
        return static_cast<double>(plane->stats().responses_lost);
      });
      registry.add_gauge("sim.fault_sends_failed", lane, [plane] {
        return static_cast<double>(plane->stats().sends_failed);
      });
    }
  }

 private:
  /// One in-flight response parked on the delivery wheel; payload bytes
  /// live in pool_, recycled after the sink call.
  struct InFlight {
    util::Nanos arrival;
    ResponsePool::Slot slot;
    std::uint32_t size;
  };

  /// Delivery wheel geometry: enough slots that the common in-flight span
  /// (base RTT + a typical route's per-hop latency + jitter + fault reorder
  /// delay) fits inside one rotation with sparse slots, and a tick coarse
  /// enough that a drain-per-destination cadence advances the cursor only
  /// every few drains.  Entries beyond one rotation stay parked (correct,
  /// just revisited once per rotation), so these are tuning knobs, not
  /// correctness bounds.
  static constexpr int kWheelSlotBits = 11;
  static util::Nanos wheel_tick(const SimNetwork& network,
                                util::Nanos probe_interval) noexcept {
    const SimParams& p = network.topology().params();
    const util::Nanos horizon = p.rtt_base + 16 * p.rtt_per_hop +
                                p.rtt_jitter + p.faults.reorder_max_delay;
    return std::max<util::Nanos>(
        {8 * probe_interval, 2 * horizon >> kWheelSlotBits, 1});
  }

  FR_HOT void push_pending(util::Nanos arrival, ResponsePool::Slot slot,
                           std::uint32_t size) {
    wheel_.schedule(arrival, InFlight{arrival, slot, size});
  }

  FR_HOT void deliver_due(util::Nanos deadline, const Sink& sink) {
    // The hashed wheel expires in (deadline, insertion-seq) order — the
    // same total order the former binary heap produced on (arrival, seq),
    // since entries are scheduled in exactly the order the heap pushed
    // them — at O(1) amortized per response instead of O(log n).
    wheel_.expire_due(deadline, [this, &sink](const InFlight& item) {
      clock_.advance_to(item.arrival);
      sink(pool_.buffer(item.slot).first(item.size), item.arrival);
      pool_.release(item.slot);
    });
  }

  SimNetwork& network_;
  util::SimClock clock_;
  util::Nanos probe_interval_;
  /// Cached topology rtt_base: no response arrives sooner than this after
  /// its probe's send (jitter, per-hop latency, and reorder delay are all
  /// non-negative), so it lower-bounds the intra-batch response window.
  util::Nanos min_response_latency_;
  /// In-flight responses keyed by arrival time (calendar-queue delivery).
  util::TimingWheel<InFlight> wheel_;
  /// Fixed-slot storage for in-flight response payloads.
  ResponsePool pool_;
  /// Scratch for process_batch outcomes (originals + possible duplicates).
  std::array<BatchDelivery, 2 * core::ProbeBatch::kMaxPackets> batch_out_;
  /// Optional per-stage attribution (kProcess); null = no-op.
  obs::CycleLedger* cycles_ = nullptr;
  util::MonotonicClock cycle_clock_;
};

/// Virtual-time ShardRuntimeProvider: one (SimNetwork, SimScanRuntime) lane
/// per logical shard, preallocated from ShardedTracer::plan so runtime_for
/// is a lock-free lookup from any worker thread.  Topology is immutable and
/// safely shared; everything mutable (network state, virtual clock, pending
/// responses) is shard-private, so each shard's sub-scan is exactly as
/// deterministic as an unsharded virtual-time scan — which is what makes the
/// merged result invariant under the worker count.
class SimShardRuntimeProvider final : public core::ShardRuntimeProvider {
 public:
  /// `start_times` (optional, indexed by shard) starts each lane's virtual
  /// clock at the given instant — required when resuming a sharded scan
  /// from a checkpoint set, so rate pacing and the fault schedule continue
  /// each shard's uninterrupted timeline.  Missing entries start at 0.
  SimShardRuntimeProvider(const Topology& topology,
                          const core::ShardedTracerConfig& config,
                          std::span<const util::Nanos> start_times = {}) {
    const auto shards = core::ShardedTracer::plan(config);
    lanes_.reserve(shards.size());
    for (const core::ShardInfo& shard : shards) {
      const auto i = static_cast<std::size_t>(shard.index);
      lanes_.push_back(std::make_unique<Lane>(
          topology, shard.probes_per_second,
          i < start_times.size() ? start_times[i] : 0));
    }
  }

  core::ScanRuntime& runtime_for(const core::ShardInfo& shard) override {
    return lanes_[static_cast<std::size_t>(shard.index)]->runtime;
  }

  /// Registers every shard runtime's gauges, shard i on metric lane i —
  /// matching the lane assignment ShardedTracer::shard_config makes for
  /// counters, so one lane holds one shard's whole telemetry.
  void register_gauges(obs::MetricsRegistry& registry) const {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      lanes_[i]->runtime.register_gauges(registry, static_cast<int>(i));
    }
  }

  /// Aggregated ground-truth statistics across all shard networks (only
  /// meaningful after run() — workers have stopped touching their lanes).
  NetworkStats stats() const {
    NetworkStats total;
    for (const auto& lane : lanes_) {
      const NetworkStats& s = lane->network.stats();
      total.probes += s.probes;
      total.malformed += s.malformed;
      total.out_of_universe += s.out_of_universe;
      total.time_exceeded_sent += s.time_exceeded_sent;
      total.destination_responses += s.destination_responses;
      total.silent_interface += s.silent_interface;
      total.silent_host += s.silent_host;
      total.rate_limited += s.rate_limited;
      total.dropped_dark += s.dropped_dark;
      total.route_cache_hits += s.route_cache_hits;
      total.route_cache_misses += s.route_cache_misses;
    }
    return total;
  }

  /// Aggregated fault-injection tallies across all shard networks (zero
  /// when the fault plane is disabled).  Same post-run-only contract as
  /// stats().
  FaultPlane::Stats fault_stats() const {
    FaultPlane::Stats total;
    for (const auto& lane : lanes_) {
      const FaultPlane* plane = lane->network.fault_plane();
      if (plane == nullptr) continue;
      const FaultPlane::Stats& s = plane->stats();
      total.probes_lost += s.probes_lost;
      total.probes_blackholed += s.probes_blackholed;
      total.probes_flap_dropped += s.probes_flap_dropped;
      total.responses_lost += s.responses_lost;
      total.responses_duplicated += s.responses_duplicated;
      total.responses_reordered += s.responses_reordered;
      total.responses_corrupted += s.responses_corrupted;
      total.sends_failed += s.sends_failed;
    }
    return total;
  }

 private:
  struct Lane {
    Lane(const Topology& topology, double pps, util::Nanos start_time)
        : network(topology), runtime(network, pps, start_time) {}

    SimNetwork network;
    SimScanRuntime runtime;
  };

  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace flashroute::sim
