// Virtual-time ScanRuntime over the Internet simulator.
//
// `send` advances the virtual clock by one probe slot (1/pps — 10 µs at the
// paper's 100 Kpps), hands the packet to SimNetwork, and queues the response
// (if any) for delivery at its simulated arrival time.  `drain` delivers the
// responses due by the current virtual instant, deterministically emulating
// the paper's decoupled sender/receiver threads: a response is visible to
// the engine exactly as soon as its RTT has elapsed, never earlier.

#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "core/runtime.h"
#include "core/sharded_tracer.h"
#include "obs/metrics.h"
#include "sim/network.h"
#include "sim/response_pool.h"
#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::sim {

class SimScanRuntime final : public core::ScanRuntime {
 public:
  SimScanRuntime(SimNetwork& network, double probes_per_second,
                 util::Nanos start_time = 0)
      : network_(network),
        clock_(start_time),
        probe_interval_(static_cast<util::Nanos>(
            static_cast<double>(util::kSecond) / probes_per_second)) {}

  FR_HOT util::Nanos now() const noexcept override { return clock_.now(); }

  [[nodiscard]] FR_HOT bool try_send(
      std::span<const std::byte> packet) override {
    clock_.advance(probe_interval_);
    // Transient local send failure (fault plane): the pacing slot is
    // consumed but the packet never reaches the simulated network.
    if (FaultPlane* plane = network_.fault_plane();
        plane != nullptr && plane->fail_send(clock_.now())) {
      return false;
    }
    ++packets_sent_;
    // Encode the response (if any) straight into a recycled pool slot; the
    // delivery heap carries only {slot, size}, so the steady-state sim path
    // moves no payload bytes and allocates nothing.
    const ResponsePool::Slot slot = pool_.acquire();
    if (auto response =
            network_.process_into(packet, clock_.now(), pool_.buffer(slot))) {
      push_pending(response->arrival, slot,
                   static_cast<std::uint32_t>(response->size));
      if (response->duplicate_arrival > 0) {
        // Fault-plane duplication: a second pooled copy of the same bytes,
        // delivered at its own (later) arrival time.
        const ResponsePool::Slot copy = pool_.acquire();
        std::memcpy(pool_.buffer(copy).data(), pool_.buffer(slot).data(),
                    response->size);
        push_pending(response->duplicate_arrival, copy,
                     static_cast<std::uint32_t>(response->size));
      }
    } else {
      pool_.release(slot);
    }
    return true;
  }

  /// Adaptive-backoff hook: subsequent sends pace at the new rate.
  void set_rate(double probes_per_second) override {
    probe_interval_ = static_cast<util::Nanos>(
        static_cast<double>(util::kSecond) / probes_per_second);
  }

  FR_HOT void drain(const Sink& sink) override {
    deliver_due(clock_.now(), sink);
  }

  FR_HOT void idle_until(util::Nanos t, const Sink& sink) override {
    deliver_due(t, sink);
    clock_.advance_to(t);
  }

  util::SimClock& clock() noexcept { return clock_; }

  /// Registers this runtime's observability gauges on `lane` of a metrics
  /// registry (DESIGN.md §7): the sim network's rate-limit drops and
  /// route-cache hit rate, plus response-pool occupancy.  The gauge
  /// callbacks read plain counters owned by this runtime's scan thread;
  /// they are sampled either on that thread (interval ticks) or after the
  /// scan (the summary snapshot), so sim scans stay deterministic.  This —
  /// not bespoke accessors on SimNetwork — is how scan-facing tooling
  /// observes the sim internals.
  void register_gauges(obs::MetricsRegistry& registry, int lane) const {
    const SimNetwork* network = &network_;
    registry.add_gauge("sim.rate_limit_drops", lane, [network] {
      return static_cast<double>(network->stats().rate_limited);
    });
    registry.add_gauge("sim.route_cache_hits", lane, [network] {
      return static_cast<double>(network->stats().route_cache_hits);
    });
    registry.add_gauge("sim.route_cache_misses", lane, [network] {
      return static_cast<double>(network->stats().route_cache_misses);
    });
    registry.add_gauge("sim.route_cache_hit_rate", lane, [network] {
      const NetworkStats& s = network->stats();
      const std::uint64_t lookups = s.route_cache_hits + s.route_cache_misses;
      return lookups == 0 ? 0.0
                          : static_cast<double>(s.route_cache_hits) /
                                static_cast<double>(lookups);
    });
    const ResponsePool* pool = &pool_;
    const std::vector<Pending>* pending = &pending_;
    registry.add_gauge("sim.response_pool_slots", lane, [pool] {
      return static_cast<double>(pool->capacity());
    });
    registry.add_gauge("sim.responses_in_flight", lane, [pending] {
      return static_cast<double>(pending->size());
    });
    // Fault-plane tallies, registered only when the plane is active so
    // zero-fault telemetry streams stay byte-identical to pre-fault builds.
    if (const FaultPlane* plane = network_.fault_plane()) {
      registry.add_gauge("sim.faults_injected", lane, [plane] {
        return static_cast<double>(plane->stats().total());
      });
      registry.add_gauge("sim.fault_probes_dropped", lane, [plane] {
        const FaultPlane::Stats& s = plane->stats();
        return static_cast<double>(s.probes_lost + s.probes_blackholed +
                                   s.probes_flap_dropped);
      });
      registry.add_gauge("sim.fault_responses_dropped", lane, [plane] {
        return static_cast<double>(plane->stats().responses_lost);
      });
      registry.add_gauge("sim.fault_sends_failed", lane, [plane] {
        return static_cast<double>(plane->stats().sends_failed);
      });
    }
  }

 private:
  struct Pending {
    util::Nanos arrival;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous arrivals
    ResponsePool::Slot slot;  // payload lives in pool_, recycled after sink
    std::uint32_t size;

    FR_HOT bool operator>(const Pending& other) const noexcept {
      if (arrival != other.arrival) return arrival > other.arrival;
      return seq > other.seq;
    }
  };

  FR_HOT void push_pending(util::Nanos arrival, ResponsePool::Slot slot,
                           std::uint32_t size) {
    // fr-lint: allow(hot-banned): in-flight heap entries are 24-byte PODs;
    // capacity reaches the max outstanding-response count early in the scan
    // and is never shrunk, so steady state re-uses it
    pending_.push_back(Pending{arrival, next_seq_++, slot, size});
    std::push_heap(pending_.begin(), pending_.end(), std::greater<>{});
  }

  FR_HOT void deliver_due(util::Nanos deadline, const Sink& sink) {
    // An explicit binary heap instead of std::priority_queue: pop_heap moves
    // the minimum to the back where it can be consumed — top() is const on
    // priority_queue.  Entries are 24-byte PODs; payloads stay in the pool.
    while (!pending_.empty() && pending_.front().arrival <= deadline) {
      std::pop_heap(pending_.begin(), pending_.end(), std::greater<>{});
      const Pending item = pending_.back();
      pending_.pop_back();
      clock_.advance_to(item.arrival);
      sink(pool_.buffer(item.slot).first(item.size), item.arrival);
      pool_.release(item.slot);
    }
  }

  SimNetwork& network_;
  util::SimClock clock_;
  util::Nanos probe_interval_;
  std::uint64_t next_seq_ = 0;
  /// Min-heap on (arrival, seq) maintained with std::push_heap/pop_heap.
  std::vector<Pending> pending_;
  /// Fixed-slot storage for in-flight response payloads.
  ResponsePool pool_;
};

/// Virtual-time ShardRuntimeProvider: one (SimNetwork, SimScanRuntime) lane
/// per logical shard, preallocated from ShardedTracer::plan so runtime_for
/// is a lock-free lookup from any worker thread.  Topology is immutable and
/// safely shared; everything mutable (network state, virtual clock, pending
/// responses) is shard-private, so each shard's sub-scan is exactly as
/// deterministic as an unsharded virtual-time scan — which is what makes the
/// merged result invariant under the worker count.
class SimShardRuntimeProvider final : public core::ShardRuntimeProvider {
 public:
  /// `start_times` (optional, indexed by shard) starts each lane's virtual
  /// clock at the given instant — required when resuming a sharded scan
  /// from a checkpoint set, so rate pacing and the fault schedule continue
  /// each shard's uninterrupted timeline.  Missing entries start at 0.
  SimShardRuntimeProvider(const Topology& topology,
                          const core::ShardedTracerConfig& config,
                          std::span<const util::Nanos> start_times = {}) {
    const auto shards = core::ShardedTracer::plan(config);
    lanes_.reserve(shards.size());
    for (const core::ShardInfo& shard : shards) {
      const auto i = static_cast<std::size_t>(shard.index);
      lanes_.push_back(std::make_unique<Lane>(
          topology, shard.probes_per_second,
          i < start_times.size() ? start_times[i] : 0));
    }
  }

  core::ScanRuntime& runtime_for(const core::ShardInfo& shard) override {
    return lanes_[static_cast<std::size_t>(shard.index)]->runtime;
  }

  /// Registers every shard runtime's gauges, shard i on metric lane i —
  /// matching the lane assignment ShardedTracer::shard_config makes for
  /// counters, so one lane holds one shard's whole telemetry.
  void register_gauges(obs::MetricsRegistry& registry) const {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      lanes_[i]->runtime.register_gauges(registry, static_cast<int>(i));
    }
  }

  /// Aggregated ground-truth statistics across all shard networks (only
  /// meaningful after run() — workers have stopped touching their lanes).
  NetworkStats stats() const {
    NetworkStats total;
    for (const auto& lane : lanes_) {
      const NetworkStats& s = lane->network.stats();
      total.probes += s.probes;
      total.malformed += s.malformed;
      total.out_of_universe += s.out_of_universe;
      total.time_exceeded_sent += s.time_exceeded_sent;
      total.destination_responses += s.destination_responses;
      total.silent_interface += s.silent_interface;
      total.silent_host += s.silent_host;
      total.rate_limited += s.rate_limited;
      total.dropped_dark += s.dropped_dark;
      total.route_cache_hits += s.route_cache_hits;
      total.route_cache_misses += s.route_cache_misses;
    }
    return total;
  }

  /// Aggregated fault-injection tallies across all shard networks (zero
  /// when the fault plane is disabled).  Same post-run-only contract as
  /// stats().
  FaultPlane::Stats fault_stats() const {
    FaultPlane::Stats total;
    for (const auto& lane : lanes_) {
      const FaultPlane* plane = lane->network.fault_plane();
      if (plane == nullptr) continue;
      const FaultPlane::Stats& s = plane->stats();
      total.probes_lost += s.probes_lost;
      total.probes_blackholed += s.probes_blackholed;
      total.probes_flap_dropped += s.probes_flap_dropped;
      total.responses_lost += s.responses_lost;
      total.responses_duplicated += s.responses_duplicated;
      total.responses_reordered += s.responses_reordered;
      total.responses_corrupted += s.responses_corrupted;
      total.sends_failed += s.sends_failed;
    }
    return total;
  }

 private:
  struct Lane {
    Lane(const Topology& topology, double pps, util::Nanos start_time)
        : network(topology), runtime(network, pps, start_time) {}

    SimNetwork network;
    SimScanRuntime runtime;
  };

  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace flashroute::sim
