// Deterministic fault-injection plane for the Internet simulator
// (DESIGN.md §9).
//
// The paper's headline trade-off — one probe per hop — is fragile under
// packet loss and ICMP rate limiting; Scamper buys accuracy back with
// timeouts and retransmission, Yarrp simply tolerates the loss.  This
// plane gives the simulator the adversity needed to exercise that
// discussion: per-direction loss, duplication, bounded reordering,
// payload corruption, persistently blackholed /24s, flapping links on a
// virtual-time schedule, and transient local send failures.
//
// Determinism contract: every fault is a stateless draw over (probe
// content, virtual send time) — never over a mutable counter — so a fault
// schedule replays byte-identically across runs, across shard
// decompositions (each shard sees the same (destination, ttl, time)
// tuples regardless of worker count), and across checkpoint resumes
// (a resumed SimNetwork reproduces the exact draws of the uninterrupted
// timeline).  A retransmitted probe carries a fresh send time and hence a
// fresh, independent draw — exactly the property retransmission relies on.
//
// Hot-path contract: all draws are constexpr hash arithmetic (util/rng.h);
// the plane allocates nothing after construction.  With all knobs at zero
// SimNetwork does not even construct a plane, so the default simulation
// path is unchanged.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "sim/params.h"
#include "util/annotations.h"
#include "util/clock.h"
#include "util/rng.h"

namespace flashroute::sim {

class FaultPlane {
 public:
  /// Injection tallies, by kind.  Single-writer (the lane's scan thread),
  /// read by gauges/tests between or after scans.
  struct Stats {
    std::uint64_t probes_lost = 0;
    std::uint64_t probes_blackholed = 0;
    std::uint64_t probes_flap_dropped = 0;
    std::uint64_t responses_lost = 0;
    std::uint64_t responses_duplicated = 0;
    std::uint64_t responses_reordered = 0;
    std::uint64_t responses_corrupted = 0;
    std::uint64_t sends_failed = 0;

    std::uint64_t total() const noexcept {
      return probes_lost + probes_blackholed + probes_flap_dropped +
             responses_lost + responses_duplicated + responses_reordered +
             responses_corrupted + sends_failed;
    }
  };

  /// `topology_seed` is folded with params.fault_seed so fault schedules
  /// follow the simulated world by default but can be re-rolled alone.
  FaultPlane(const FaultParams& params, std::uint64_t topology_seed);

  /// True when a probe to `destination` (address value) with `ttl`, sent at
  /// `send_time`, dies en route: blackholed prefix, flapping link in its
  /// down window, or random loss.  Counts the drop by kind.
  FR_HOT bool drop_probe(std::uint32_t destination, std::uint8_t ttl,
                         util::Nanos send_time) noexcept {
    const std::uint32_t prefix = destination >> 8;
    if (params_.blackhole_fraction > 0.0 &&
        util::stable_chance(seed_blackhole_, prefix,
                            params_.blackhole_fraction)) {
      ++stats_.probes_blackholed;
      return true;
    }
    if (params_.flap_fraction > 0.0 && flap_down(prefix, send_time)) {
      ++stats_.probes_flap_dropped;
      return true;
    }
    if (params_.probe_loss > 0.0 &&
        util::stable_chance(seed_probe_loss_, key(destination, ttl, send_time),
                            params_.probe_loss)) {
      ++stats_.probes_lost;
      return true;
    }
    return false;
  }

  /// True when the response to the (destination, ttl, send_time) probe is
  /// lost on the way back.
  FR_HOT bool drop_response(std::uint32_t destination, std::uint8_t ttl,
                            util::Nanos send_time) noexcept {
    if (params_.response_loss > 0.0 &&
        util::stable_chance(seed_response_loss_,
                            key(destination, ttl, send_time),
                            params_.response_loss)) {
      ++stats_.responses_lost;
      return true;
    }
    return false;
  }

  /// Corrupts the delivered response in place (flips two payload bytes)
  /// with probability corrupt_prob; returns whether it did.
  FR_HOT bool corrupt_response(std::uint32_t destination, std::uint8_t ttl,
                               util::Nanos send_time,
                               std::span<std::byte> packet) noexcept {
    if (params_.corrupt_prob <= 0.0 || packet.empty()) return false;
    const std::uint64_t k = key(destination, ttl, send_time);
    if (!util::stable_chance(seed_corrupt_, k, params_.corrupt_prob)) {
      return false;
    }
    const std::uint64_t draw = util::hash_combine(seed_corrupt_, k, 1);
    packet[static_cast<std::size_t>(
        util::stable_bounded(seed_corrupt_, draw, packet.size()))] ^=
        std::byte{0xFF};
    packet[static_cast<std::size_t>(
        util::stable_bounded(seed_corrupt_, draw + 1, packet.size()))] ^=
        std::byte{0x55};
    ++stats_.responses_corrupted;
    return true;
  }

  /// Extra in-flight delay (0 = delivered in order).  Bounded by
  /// reorder_max_delay, so reordering is local, not unbounded starvation.
  FR_HOT util::Nanos reorder_delay(std::uint32_t destination, std::uint8_t ttl,
                                   util::Nanos send_time) noexcept {
    if (params_.reorder_prob <= 0.0 || params_.reorder_max_delay <= 0) {
      return 0;
    }
    const std::uint64_t k = key(destination, ttl, send_time);
    if (!util::stable_chance(seed_reorder_, k, params_.reorder_prob)) return 0;
    ++stats_.responses_reordered;
    return 1 + static_cast<util::Nanos>(util::stable_bounded(
                   seed_reorder_, k + 1,
                   static_cast<std::uint64_t>(params_.reorder_max_delay)));
  }

  /// Extra arrival time of a duplicated copy of the response, or 0 when the
  /// response is not duplicated.  The copy trails the original by up to
  /// 2 ms, modelling a close-by retransmission artifact.
  FR_HOT util::Nanos duplicate_lag(std::uint32_t destination, std::uint8_t ttl,
                                   util::Nanos send_time) noexcept {
    if (params_.duplicate_prob <= 0.0) return 0;
    const std::uint64_t k = key(destination, ttl, send_time);
    if (!util::stable_chance(seed_duplicate_, k, params_.duplicate_prob)) {
      return 0;
    }
    ++stats_.responses_duplicated;
    return 1 + static_cast<util::Nanos>(util::stable_bounded(
                   seed_duplicate_, k + 1,
                   static_cast<std::uint64_t>(2 * util::kMillisecond)));
  }

  /// True when the local send at virtual time `now` fails transiently.
  /// Keyed on the send time alone: within one lane the virtual clock
  /// advances every send, so the key is unique per attempt.
  FR_HOT bool fail_send(util::Nanos now) noexcept {
    if (params_.send_fail_prob <= 0.0) return false;
    if (!util::stable_chance(seed_send_fail_, static_cast<std::uint64_t>(now),
                             params_.send_fail_prob)) {
      return false;
    }
    ++stats_.sends_failed;
    return true;
  }

  const Stats& stats() const noexcept { return stats_; }
  const FaultParams& params() const noexcept { return params_; }

 private:
  FR_HOT static std::uint64_t key(std::uint32_t destination, std::uint8_t ttl,
                                  util::Nanos send_time) noexcept {
    return util::hash_combine(destination, ttl,
                              static_cast<std::uint64_t>(send_time));
  }

  /// A flapping prefix is down during the first flap_down_share of each
  /// period; a per-prefix phase offset decorrelates the prefixes.
  FR_HOT bool flap_down(std::uint32_t prefix,
                        util::Nanos send_time) noexcept {
    if (!util::stable_chance(seed_flap_, prefix, params_.flap_fraction)) {
      return false;
    }
    const util::Nanos period =
        params_.flap_period > 0 ? params_.flap_period : util::kSecond;
    const auto phase = static_cast<util::Nanos>(util::stable_bounded(
        seed_flap_phase_, prefix, static_cast<std::uint64_t>(period)));
    const util::Nanos position = (send_time + phase) % period;
    return position <
           static_cast<util::Nanos>(params_.flap_down_share *
                                    static_cast<double>(period));
  }

  FaultParams params_;
  Stats stats_;
  std::uint64_t seed_probe_loss_;
  std::uint64_t seed_response_loss_;
  std::uint64_t seed_duplicate_;
  std::uint64_t seed_reorder_;
  std::uint64_t seed_corrupt_;
  std::uint64_t seed_blackhole_;
  std::uint64_t seed_flap_;
  std::uint64_t seed_flap_phase_;
  std::uint64_t seed_send_fail_;
};

}  // namespace flashroute::sim
