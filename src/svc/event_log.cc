#include "svc/event_log.h"

#include <cstdio>

#include "util/sync.h"

namespace flashroute::svc {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JobEventLog::JobEventLog(std::ostream* out, NowFn now)
    : out_(out), now_(std::move(now)) {}

void JobEventLog::emit(const JobEvent& event) {
  const util::MutexLock lock(mutex_);
  std::uint64_t t = now_ ? now_() : 0;
  if (t < last_t_) t = last_t_;  // clamp: the stream must be monotone
  last_t_ = t;
  seq_ += 1;

  bool counted = false;
  for (auto& [name, count] : counts_) {
    if (name == event.event) {
      count += 1;
      counted = true;
      break;
    }
  }
  if (!counted) counts_.emplace_back(event.event, 1);

  if (out_ == nullptr) return;
  std::ostream& os = *out_;
  os << "{\"type\":\"job_event\",\"seq\":" << seq_ << ",\"t_ns\":" << t
     << ",\"job\":" << event.job_id << ",\"event\":\"" << event.event << '"';
  if (!event.name.empty()) {
    os << ",\"name\":\"" << json_escape(event.name) << '"';
  }
  if (event.has_priority) os << ",\"priority\":" << event.priority;
  if (!event.reason.empty()) {
    os << ",\"reason\":\"" << json_escape(event.reason) << '"';
  }
  if (!event.detail.empty()) {
    os << ",\"detail\":\"" << json_escape(event.detail) << '"';
  }
  if (event.worker >= 0) os << ",\"worker\":" << event.worker;
  if (event.slice > 0) os << ",\"slice\":" << event.slice;
  if (event.probes > 0) os << ",\"probes\":" << event.probes;
  os << "}\n";
  os.flush();
}

void JobEventLog::summary(
    bool drained, bool clean_shutdown,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  const util::MutexLock lock(mutex_);
  if (out_ == nullptr) return;
  std::ostream& os = *out_;
  seq_ += 1;
  os << "{\"type\":\"job_summary\",\"seq\":" << seq_ << ",\"t_ns\":" << last_t_
     << ",\"drained\":" << (drained ? "true" : "false")
     << ",\"clean_shutdown\":" << (clean_shutdown ? "true" : "false")
     << ",\"events\":{";
  bool first = true;
  for (const auto& [name, count] : counts_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << count;
  }
  os << "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << value;
  }
  os << "}}\n";
  os.flush();
}

std::uint64_t JobEventLog::events_emitted() const {
  const util::MutexLock lock(mutex_);
  return seq_;
}

}  // namespace flashroute::svc
