#include "svc/wire.h"

#include <cstring>

namespace flashroute::svc {

void Writer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    put_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    put_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void Writer::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void Writer::put_f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void Writer::put_string(std::string_view v) {
  put_varint(v.size());
  buffer_.append(v.data(), v.size());
}

bool Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!need(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t Reader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Reader::u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (!need(1) || shift > 63) {
      ok_ = false;
      return 0;
    }
    const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::string() {
  const std::uint64_t n = varint();
  if (n > kMaxFrame || !need(static_cast<std::size_t>(n))) {
    ok_ = false;
    return {};
  }
  std::string s(data_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::optional<MsgType> peek_type(std::string_view payload) {
  if (payload.empty()) return std::nullopt;
  const auto raw = static_cast<std::uint8_t>(payload[0]);
  if (raw < static_cast<std::uint8_t>(MsgType::kSubmit) ||
      raw > static_cast<std::uint8_t>(MsgType::kError)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(raw);
}

void encode_spec(Writer& w, const JobSpec& spec) {
  w.put_string(spec.name);
  w.put_u32(static_cast<std::uint32_t>(spec.prefix_bits));
  w.put_u32(spec.first_prefix);
  w.put_u64(spec.topology_seed);
  w.put_u64(spec.scan_seed);
  w.put_u64(spec.target_seed);
  w.put_f64(spec.probes_per_second);
  w.put_u8(spec.split_ttl);
  w.put_u8(spec.gap_limit);
  w.put_u8(spec.max_ttl);
  w.put_bool(spec.preprobe_random);
  w.put_bool(spec.collect_routes);
  w.put_u8(spec.max_retransmits);
  w.put_bool(spec.adaptive_backoff);
  w.put_u64(static_cast<std::uint64_t>(spec.min_round_duration));
  w.put_u32(static_cast<std::uint32_t>(spec.priority));
  w.put_f64(spec.weight);
  w.put_u64(static_cast<std::uint64_t>(spec.checkpoint_interval));
  w.put_string(spec.request_key);
}

std::optional<JobSpec> decode_spec(Reader& r) {
  JobSpec spec;
  spec.name = r.string();
  spec.prefix_bits = static_cast<int>(r.u32());
  spec.first_prefix = r.u32();
  spec.topology_seed = r.u64();
  spec.scan_seed = r.u64();
  spec.target_seed = r.u64();
  spec.probes_per_second = r.f64();
  spec.split_ttl = r.u8();
  spec.gap_limit = r.u8();
  spec.max_ttl = r.u8();
  spec.preprobe_random = r.boolean();
  spec.collect_routes = r.boolean();
  spec.max_retransmits = r.u8();
  spec.adaptive_backoff = r.boolean();
  spec.min_round_duration = static_cast<util::Nanos>(r.u64());
  spec.priority = static_cast<int>(r.u32());
  spec.weight = r.f64();
  spec.checkpoint_interval = static_cast<util::Nanos>(r.u64());
  spec.request_key = r.string();
  if (!r.ok()) return std::nullopt;
  return spec;
}

void encode_view(Writer& w, const JobView& view) {
  w.put_u64(view.id);
  w.put_u8(static_cast<std::uint8_t>(view.state));
  w.put_string(view.name);
  w.put_u32(static_cast<std::uint32_t>(view.priority));
  w.put_f64(view.probes_per_second);
  w.put_u64(view.probes);
  w.put_u64(view.slices);
  w.put_bool(view.has_checkpoint);
  w.put_string(view.detail);
}

std::optional<JobView> decode_view(Reader& r) {
  JobView view;
  view.id = r.u64();
  view.state = static_cast<JobState>(r.u8());
  view.name = r.string();
  view.priority = static_cast<int>(r.u32());
  view.probes_per_second = r.f64();
  view.probes = r.u64();
  view.slices = r.u64();
  view.has_checkpoint = r.boolean();
  view.detail = r.string();
  if (!r.ok()) return std::nullopt;
  return view;
}

}  // namespace flashroute::svc
