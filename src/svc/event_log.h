// Deterministic JSONL job-event stream (DESIGN.md §12).
//
// Every lifecycle transition of every job becomes one line:
//
//   {"type":"job_event","seq":3,"t_ns":120000000,"job":1,"event":"running",
//    "worker":0,"slice":1}
//
// and the stream ends with a single "job_summary" line carrying per-event
// counts, the drained / clean_shutdown flags, and the merged svc.* counters
// from the metrics registry.  scripts/check_metrics_schema.py --job-events
// validates the stream: seq strictly increasing from 1, t_ns monotone, the
// per-job state machine legal, and the summary counts equal to the observed
// event counts.
//
// The timestamp supplier is injected: the daemon passes monotonic
// nanoseconds since its start, the unit tests pass the scheduler's virtual
// clock — which makes the test streams byte-identical across runs (the
// determinism boundary of the service sits at the socket; everything inside
// it is replayable).

#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/sync.h"

namespace flashroute::svc {

/// One lifecycle event.  Unused optional fields are omitted from the JSON.
struct JobEvent {
  std::uint64_t job_id = 0;
  const char* event = "";    ///< submitted|admitted|rejected|running|
                             ///< preempted|resumed|completed|failed|cancelled
  std::string name;          ///< job label (submitted events)
  std::string reason;        ///< machine-readable (rejected events)
  std::string detail;        ///< human-readable elaboration
  std::uint64_t probes = 0;  ///< cumulative probes (progress events)
  std::uint64_t slice = 0;   ///< slice ordinal (running/resumed/preempted)
  int worker = -1;           ///< worker index, -1 = control plane
  bool has_priority = false;
  int priority = 0;
};

class JobEventLog {
 public:
  using NowFn = std::function<std::uint64_t()>;

  /// `out` may be null (events are still counted for the summary).  `now`
  /// supplies t_ns; it is sampled under the log's lock and clamped to be
  /// monotone.
  JobEventLog(std::ostream* out, NowFn now);

  void emit(const JobEvent& event) FR_EXCLUDES(mutex_);

  /// Writes the final "job_summary" line.  `counters` is the merged svc.*
  /// snapshot from the metrics registry, emitted name → value.
  void summary(bool drained, bool clean_shutdown,
               const std::vector<std::pair<std::string, std::uint64_t>>&
                   counters) FR_EXCLUDES(mutex_);

  std::uint64_t events_emitted() const FR_EXCLUDES(mutex_);

 private:
  // Immutable after construction: the sink pointer and the timestamp
  // supplier are set once and only ever read.
  // fr-lint: allow(guarded-member): set in the constructor, read-only after
  std::ostream* out_;
  // fr-lint: allow(guarded-member): set in the constructor, read-only after
  NowFn now_;
  mutable util::Mutex mutex_;
  std::uint64_t seq_ FR_GUARDED_BY(mutex_) = 0;
  std::uint64_t last_t_ FR_GUARDED_BY(mutex_) = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counts_
      FR_GUARDED_BY(mutex_);
};

/// Escapes a string for embedding in a JSON double-quoted literal.
std::string json_escape(const std::string& raw);

}  // namespace flashroute::svc
