// JobRunner: one scan job's execution state across scheduler slices
// (DESIGN.md §12).
//
// A slice is a span of scan execution between scheduler decisions: the
// runner builds a fresh SimNetwork + SimScanRuntime + Tracer per slice
// (resuming from the job's checkpoint when it has one) and runs until the
// engine either finishes or hits a checkpoint barrier at which the
// scheduler's verdict is preempt/cancel.  The expensive part — the
// simulated topology — is built once and retained across slices.
//
// Determinism: the spec fixes checkpoint_interval > 0, so the engine
// quiesces at every barrier whether or not the slice ends there (PR 5's
// equivalence contract).  A job preempted N times therefore produces a
// ScanResult byte-identical (in FRSC archive form) to the same spec run
// uncontended — the property the daemon bench gates.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/result.h"
#include "io/checkpoint.h"
#include "io/scan_archive.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "svc/job.h"
#include "svc/scheduler.h"

namespace flashroute::svc {

enum class SliceOutcome : std::uint8_t {
  kCompleted,  ///< the scan finished; SliceResult::result is valid
  kPreempted,  ///< stopped at a barrier; SliceResult::checkpoint is valid
  kCancelled,  ///< stopped without a checkpoint; the job is dead
};

struct SliceResult {
  SliceOutcome outcome = SliceOutcome::kCancelled;
  /// Cumulative probes sent across all of the job's slices so far.
  std::uint64_t probes_total = 0;
  std::optional<io::ScanCheckpoint> checkpoint;  ///< kPreempted only
  core::ScanResult result;                       ///< kCompleted only
};

class JobRunner {
 public:
  explicit JobRunner(const JobSpec& spec);

  /// Runs one slice.  `resume` is the checkpoint a previous slice saved
  /// (nullopt = first slice); it must stay alive for the whole call.
  /// `on_barrier` is consulted at every checkpoint barrier with the
  /// engine's checkpoint — returning kPreempt keeps it as the slice's
  /// result, kCancel discards it and kills the job.
  SliceResult run_slice(
      const std::optional<io::ScanCheckpoint>& resume,
      const std::function<BarrierDecision(const io::ScanCheckpoint&)>&
          on_barrier);

  /// Asynchronous hard cancel: the engine aborts at its next round barrier
  /// (finer-grained than checkpoint barriers), yielding kCancelled.
  void request_cancel() { cancel_.store(true, std::memory_order_relaxed); }

  /// Archive metadata for this job's results.
  io::ArchiveHeader archive_header() const;

  const JobSpec& spec() const noexcept { return spec_; }

 private:
  const sim::Topology& topology();

  JobSpec spec_;
  std::unique_ptr<sim::Topology> topology_;  ///< lazy; retained across slices
  // fr-atomic: cancel flag — set by the daemon's control plane, polled
  // (relaxed) by whichever worker is running the job's current slice.
  std::atomic<bool> cancel_{false};
};

}  // namespace flashroute::svc
