#include "svc/daemon.h"

#include <utility>

#include "analysis/churn.h"
#include "util/sync.h"

namespace flashroute::svc {

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string error_reply(const char* message) {
  Writer w(MsgType::kError);
  w.put_string(message);
  return w.bytes();
}

}  // namespace

Daemon::Daemon(const DaemonOptions& options)
    : options_(options), scheduler_(([&options] {
        SchedulerConfig config = options.scheduler;
        if (config.num_workers < 1) config.num_workers = 1;
        return config;
      })()) {
  if (options_.scheduler.num_workers < 1) options_.scheduler.num_workers = 1;
  ids_ = obs::register_job_metrics(registry_);
  registry_.freeze(1 + options_.scheduler.num_workers);
  for (int i = 0; i < registry_.num_lanes(); ++i) {
    lanes_.push_back(registry_.lane(i));
  }
}

Daemon::~Daemon() {
  if (started_) {
    request_shutdown();
    wait();
  }
}

bool Daemon::start() {
  archive_ = std::make_unique<io::JobArchive>(options_.archive_path);
  if (!archive_->ok()) return false;
  auto listener = ListenSocket::bind_and_listen(options_.socket_path);
  if (!listener.has_value() || !wake_.valid()) return false;
  listener_ = std::move(*listener);
  epoch_ = clock_.now();
  JobEventLog::NowFn event_clock = options_.event_clock;
  if (!event_clock) {
    event_clock = [this] { return static_cast<std::uint64_t>(now()); };
  }
  events_ = std::make_unique<JobEventLog>(options_.events, event_clock);
  io_thread_ = std::thread(&Daemon::io_loop, this);
  workers_.reserve(static_cast<std::size_t>(options_.scheduler.num_workers));
  for (int i = 0; i < options_.scheduler.num_workers; ++i) {
    workers_.emplace_back(&Daemon::worker_loop, this, i);
  }
  started_ = true;
  return true;
}

void Daemon::request_shutdown() {
  {
    const util::MutexLock lock(mutex_);
    shutdown_requested_ = true;
    scheduler_.drain();
  }
  cv_.notify_all();
  wake_.wake();
}

void Daemon::wait() {
  if (!started_) return;
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (summary_written_) return;
  summary_written_ = true;
  const obs::MetricsSnapshot snapshot = registry_.snapshot();
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  counters.reserve(snapshot.counter_names.size());
  for (std::size_t i = 0; i < snapshot.counter_names.size(); ++i) {
    counters.emplace_back(snapshot.counter_names[i], snapshot.counters[i]);
  }
  bool drained = false;
  {
    // Every thread has been joined, but the capability contract is about
    // access discipline, not liveness — take the lock like everyone else.
    const util::MutexLock lock(mutex_);
    drained = scheduler_.draining();
  }
  events_->summary(drained, /*clean_shutdown=*/true, counters);
}

bool Daemon::reap_for_shutdown() {
  for (const JobView& view : scheduler_.views()) {
    if (job_state_terminal(view.state) || view.state == JobState::kRunning) {
      continue;
    }
    if (scheduler_.cancel(view.id) == CancelOutcome::kCancelled) {
      lanes_[0].inc(ids_.jobs_cancelled);
      JobEvent event;
      event.job_id = view.id;
      event.event = "cancelled";
      event.detail = "daemon shutdown";
      events_->emit(event);
    }
  }
  return scheduler_.running_count() == 0;
}

void Daemon::io_loop() {
  std::vector<Connection> clients;
  std::string payload;
  while (true) {
    {
      const util::MutexLock lock(mutex_);
      if (shutdown_requested_ && reap_for_shutdown()) {
        stop_workers_ = true;
        break;
      }
    }
    std::vector<int> fds;
    fds.reserve(clients.size() + 2);
    fds.push_back(listener_.fd());
    fds.push_back(wake_.read_fd());
    for (const Connection& client : clients) fds.push_back(client.fd());
    const std::vector<int> ready = wait_readable(fds, 100);

    for (const int fd : ready) {
      if (fd == wake_.read_fd()) {
        wake_.drain();
      } else if (fd == listener_.fd()) {
        if (auto client = listener_.accept_client(); client.has_value()) {
          clients.push_back(std::move(*client));
        }
      }
    }
    for (Connection& client : clients) {
      bool alive = client.valid();
      for (const int fd : ready) {
        if (alive && fd == client.fd()) {
          if (client.read_frame(payload)) {
            const std::string reply = handle_request(payload);
            alive = !reply.empty() && client.write_frame(reply);
          } else {
            alive = false;
          }
        }
      }
      if (!alive) client.close();
    }
    std::erase_if(clients,
                  [](const Connection& client) { return !client.valid(); });
  }
  cv_.notify_all();
}

std::string Daemon::handle_request(std::string_view payload) {
  const std::optional<MsgType> type = peek_type(payload);
  if (!type.has_value()) return error_reply("unknown message type");
  Reader reader(payload);
  reader.u8();  // consume the type byte
  switch (*type) {
    case MsgType::kSubmit:
      return handle_submit(reader);
    case MsgType::kStatus:
      return handle_status(reader);
    case MsgType::kList:
      return handle_list();
    case MsgType::kCancel:
      return handle_cancel(reader);
    case MsgType::kDiff:
      return handle_diff(reader);
    case MsgType::kVerify:
      return handle_verify(reader);
    case MsgType::kShutdown: {
      request_shutdown();
      Writer w(MsgType::kOk);
      return w.bytes();
    }
    default:
      return error_reply("unexpected message type");
  }
}

std::string Daemon::handle_submit(Reader& reader) {
  const std::optional<JobSpec> spec = decode_spec(reader);
  if (!spec.has_value()) return error_reply("malformed submit");

  Submission submission;
  {
    const util::MutexLock lock(mutex_);
    submission = scheduler_.submit(*spec, now());
    runners_.push_back(submission.admitted
                           ? std::make_unique<JobRunner>(*spec)
                           : nullptr);
    lanes_[0].inc(ids_.jobs_submitted);
    JobEvent event;
    event.job_id = submission.job_id;
    event.event = "submitted";
    event.name = spec->name;
    event.has_priority = true;
    event.priority = spec->priority;
    events_->emit(event);
    JobEvent verdict;
    verdict.job_id = submission.job_id;
    if (submission.admitted) {
      lanes_[0].inc(ids_.jobs_admitted);
      verdict.event = "admitted";
    } else {
      lanes_[0].inc(ids_.jobs_rejected);
      verdict.event = "rejected";
      verdict.reason = submission.reason;
      verdict.detail = submission.detail;
    }
    events_->emit(verdict);
  }
  cv_.notify_all();

  Writer w(MsgType::kSubmitReply);
  w.put_bool(submission.admitted);
  w.put_u64(submission.job_id);
  w.put_string(submission.reason);
  w.put_string(submission.detail);
  return w.bytes();
}

std::string Daemon::handle_status(Reader& reader) {
  const std::uint64_t job_id = reader.u64();
  if (!reader.ok()) return error_reply("malformed status");
  std::optional<JobView> view;
  {
    const util::MutexLock lock(mutex_);
    view = scheduler_.view(job_id);
  }
  Writer w(MsgType::kStatusReply);
  w.put_bool(view.has_value());
  if (view.has_value()) encode_view(w, *view);
  return w.bytes();
}

std::string Daemon::handle_list() {
  std::vector<JobView> views;
  {
    const util::MutexLock lock(mutex_);
    views = scheduler_.views();
  }
  Writer w(MsgType::kListReply);
  w.put_varint(views.size());
  for (const JobView& view : views) encode_view(w, view);
  return w.bytes();
}

std::string Daemon::handle_cancel(Reader& reader) {
  const std::uint64_t job_id = reader.u64();
  if (!reader.ok()) return error_reply("malformed cancel");
  CancelOutcome outcome = CancelOutcome::kNotFound;
  {
    const util::MutexLock lock(mutex_);
    outcome = scheduler_.cancel(job_id);
    if (outcome == CancelOutcome::kSignalled) {
      JobRunner* runner = runners_[job_id - 1].get();
      if (runner != nullptr) runner->request_cancel();
    } else if (outcome == CancelOutcome::kCancelled) {
      lanes_[0].inc(ids_.jobs_cancelled);
      JobEvent event;
      event.job_id = job_id;
      event.event = "cancelled";
      event.detail = "cancelled before running";
      events_->emit(event);
    }
  }
  Writer w(MsgType::kCancelReply);
  w.put_u8(static_cast<std::uint8_t>(outcome));
  return w.bytes();
}

std::string Daemon::handle_diff(Reader& reader) {
  const std::uint64_t before_id = reader.u64();
  const std::uint64_t after_id = reader.u64();
  if (!reader.ok()) return error_reply("malformed diff");
  // Archive reads take the archive's own lock, not the daemon's — a diff
  // of two large snapshots must not stall admissions.
  const std::optional<io::LoadedArchive> before = archive_->load(before_id);
  const std::optional<io::LoadedArchive> after = archive_->load(after_id);
  Writer w(MsgType::kDiffReply);
  if (!before.has_value() || !after.has_value()) {
    w.put_bool(false);
    w.put_string("job has no archived result");
    return w.bytes();
  }
  const std::optional<analysis::ChurnReport> report =
      analysis::diff_snapshots(*before, *after);
  if (!report.has_value()) {
    w.put_bool(false);
    w.put_string("snapshots are not comparable");
    return w.bytes();
  }
  w.put_bool(true);
  w.put_u64(report->interfaces_before);
  w.put_u64(report->interfaces_after);
  w.put_u64(report->interfaces_appeared);
  w.put_u64(report->interfaces_vanished);
  w.put_u64(report->routes_compared);
  w.put_u64(report->routes_changed_hops);
  w.put_u64(report->routes_changed_length);
  return w.bytes();
}

std::string Daemon::handle_verify(Reader& reader) {
  const std::uint64_t job_id = reader.u64();
  if (!reader.ok()) return error_reply("malformed verify");
  const std::optional<std::string> payload = archive_->payload_bytes(job_id);
  Writer w(MsgType::kVerifyReply);
  w.put_bool(payload.has_value());
  if (payload.has_value()) {
    w.put_u64(payload->size());
    w.put_u64(fnv1a(*payload));
  }
  return w.bytes();
}

void Daemon::worker_loop(int worker_index) {
  const obs::MetricsLane lane =
      lanes_[static_cast<std::size_t>(1 + worker_index)];
  while (true) {
    // Dispatch state carried from the locked acquire phase into the
    // unlocked slice execution.  Two scoped MutexLock regions (acquire,
    // release) instead of one unique_lock with manual unlock/relock: the
    // thread-safety analysis — and a reader — sees exactly where the lock
    // is held, and the scan slice provably runs outside it.
    std::optional<std::uint64_t> id;
    std::optional<io::ScanCheckpoint> checkpoint;
    JobRunner* runner = nullptr;
    bool resumed = false;
    std::uint64_t base_probes = 0;
    std::uint64_t slice_no = 0;
    {
      const util::MutexLock lock(mutex_);
      while (!stop_workers_ && !scheduler_.has_dispatchable(now())) {
        cv_.wait(mutex_);
      }
      if (stop_workers_) return;
      id = scheduler_.acquire(now());
      if (!id.has_value()) continue;

      checkpoint = scheduler_.take_checkpoint(*id);
      runner = runners_[*id - 1].get();
      resumed = checkpoint.has_value();
      base_probes = resumed ? checkpoint->result.probes_sent : 0;
      slice_no = scheduler_.view(*id)->slices;
      lane.inc(ids_.slices_dispatched);
      if (resumed) lane.inc(ids_.jobs_resumed);
      JobEvent event;
      event.job_id = *id;
      event.event = resumed ? "resumed" : "running";
      event.worker = worker_index;
      event.slice = slice_no;
      event.probes = base_probes;
      events_->emit(event);
    }

    SliceResult slice = runner->run_slice(
        checkpoint, [&](const io::ScanCheckpoint& barrier_checkpoint) {
          const util::MutexLock barrier_lock(mutex_);
          return scheduler_.on_barrier(
              *id, barrier_checkpoint.result.probes_sent, now());
        });

    // The archive append happens unlocked: JobArchive serializes itself,
    // and holding the daemon lock across file I/O would stall admissions
    // (and create a daemon→archive lock-order edge for no benefit).
    std::string fail_detail;
    if (slice.outcome == SliceOutcome::kCompleted &&
        !archive_->append(*id, slice.result, runner->archive_header())) {
      fail_detail = "archive append failed";
    }

    {
      const util::MutexLock lock(mutex_);
      lane.inc(ids_.probes_executed, slice.probes_total > base_probes
                                         ? slice.probes_total - base_probes
                                         : 0);
      JobEvent done;
      done.job_id = *id;
      done.worker = worker_index;
      done.slice = slice_no;
      done.probes = slice.probes_total;
      switch (slice.outcome) {
        case SliceOutcome::kCompleted:
          if (fail_detail.empty()) {
            scheduler_.release_completed(*id, slice.probes_total, now());
            lane.inc(ids_.jobs_completed);
            done.event = "completed";
          } else {
            scheduler_.release_failed(*id, fail_detail);
            lane.inc(ids_.jobs_failed);
            done.event = "failed";
            done.detail = fail_detail;
          }
          break;
        case SliceOutcome::kPreempted:
          scheduler_.release_preempted(*id, std::move(*slice.checkpoint));
          lane.inc(ids_.jobs_preempted);
          done.event = "preempted";
          break;
        case SliceOutcome::kCancelled:
          scheduler_.release_cancelled(*id);
          lane.inc(ids_.jobs_cancelled);
          done.event = "cancelled";
          break;
      }
      events_->emit(done);
    }
    cv_.notify_all();
    wake_.wake();  // let the I/O loop re-evaluate drain progress
  }
}

}  // namespace flashroute::svc
