#include "svc/daemon.h"

#include <algorithm>
#include <set>
#include <utility>

#include "analysis/churn.h"
#include "io/checkpoint.h"
#include "util/crash_point.h"
#include "util/sync.h"

namespace flashroute::svc {

namespace {

/// Minimum real time between checkpoint publishes at continue-barriers.
/// Bounds recovery loss to ~100ms of wall progress per job while keeping
/// the per-barrier file churn off the hot path (sim barriers arrive on the
/// virtual clock, far faster than real time).
constexpr util::Nanos kCheckpointPublishInterval = 100 * util::kMillisecond;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string error_reply(const char* message) {
  Writer w(MsgType::kError);
  w.put_string(message);
  return w.bytes();
}

}  // namespace

Daemon::Daemon(const DaemonOptions& options)
    : options_(options), scheduler_(([&options] {
        SchedulerConfig config = options.scheduler;
        if (config.num_workers < 1) config.num_workers = 1;
        return config;
      })()) {
  if (options_.scheduler.num_workers < 1) options_.scheduler.num_workers = 1;
  ids_ = obs::register_job_metrics(registry_);
  registry_.freeze(1 + options_.scheduler.num_workers);
  for (int i = 0; i < registry_.num_lanes(); ++i) {
    lanes_.push_back(registry_.lane(i));
  }
}

Daemon::~Daemon() {
  if (started_) {
    request_shutdown();
    wait();
  }
}

bool Daemon::start() {
  archive_ = std::make_unique<io::JobArchive>(options_.archive_path);
  if (!archive_->ok()) return false;
  if (!options_.journal_path.empty()) {
    if (options_.state_dir.empty() ||
        !io::ensure_directory(options_.state_dir)) {
      return false;
    }
    journal_ = std::make_unique<JobJournal>(options_.journal_path,
                                            options_.durability);
    if (!journal_->ok()) return false;
  }
  auto listener = ListenSocket::bind_and_listen(options_.socket_path);
  if (!listener.has_value() || !wake_.valid()) return false;
  listener_ = std::move(*listener);
  epoch_ = clock_.now();
  JobEventLog::NowFn event_clock = options_.event_clock;
  if (!event_clock) {
    event_clock = [this] { return static_cast<std::uint64_t>(now()); };
  }
  events_ = std::make_unique<JobEventLog>(options_.events, event_clock);
  if (journal_ != nullptr) recover_from_journal();
  io_thread_ = std::thread(&Daemon::io_loop, this);
  workers_.reserve(static_cast<std::size_t>(options_.scheduler.num_workers));
  for (int i = 0; i < options_.scheduler.num_workers; ++i) {
    workers_.emplace_back(&Daemon::worker_loop, this, i);
  }
  started_ = true;
  return true;
}

void Daemon::request_shutdown() {
  {
    const util::MutexLock lock(mutex_);
    shutdown_requested_ = true;
    scheduler_.drain();
    if (options_.drain_deadline > 0 && drain_deadline_at_ == 0) {
      drain_deadline_at_ = now() + options_.drain_deadline;
    }
  }
  cv_.notify_all();
  wake_.wake();
}

void Daemon::request_shutdown_async() noexcept {
  // No locks, no allocation: safe from a signal handler.  The I/O loop
  // turns the latch into a normal request_shutdown() on its next pass.
  shutdown_async_.store(true, std::memory_order_relaxed);
  wake_.wake();
}

std::string Daemon::checkpoint_path(std::uint64_t job_id) const {
  return options_.state_dir + "/job_" + std::to_string(job_id) + ".frck";
}

void Daemon::recover_from_journal() {
  // Fold the journal into one view per job id.  Records are
  // prefix-consistent (torn-tail truncation drops a suffix only), and the
  // submit path appends admission records in id order, so ids are dense.
  struct Replay {
    bool seen_admitted = false;
    bool rejected = false;
    JobSpec spec;
    std::string reason;
    std::string detail;
    std::uint64_t probes = 0;
    std::uint64_t slices = 0;
    std::optional<JournalKind> terminal;
    std::string terminal_detail;
  };
  std::map<std::uint64_t, Replay> jobs;
  std::uint64_t max_id = 0;
  for (const JournalRecord& record : journal_->records()) {
    if (record.job_id == 0) continue;
    Replay& replay = jobs[record.job_id];
    max_id = std::max(max_id, record.job_id);
    switch (record.kind) {
      case JournalKind::kAdmitted:
        replay.seen_admitted = true;
        replay.spec = record.spec;
        break;
      case JournalKind::kRejected:
        replay.seen_admitted = true;
        replay.rejected = true;
        replay.spec = record.spec;
        replay.reason = record.reason;
        replay.detail = record.detail;
        break;
      case JournalKind::kStarted:
        replay.slices = std::max(replay.slices, record.slices);
        break;
      case JournalKind::kBarrier:
        replay.probes = record.probes;
        replay.slices = std::max(replay.slices, record.slices);
        break;
      case JournalKind::kCompleted:
      case JournalKind::kCancelled:
      case JournalKind::kFailed:
        replay.terminal = record.kind;
        replay.terminal_detail = record.detail;
        replay.probes = std::max(replay.probes, record.probes);
        break;
    }
  }
  std::set<std::uint64_t> archived;
  for (const io::JobArchive::Entry& entry : archive_->index()) {
    archived.insert(entry.job_id);
    max_id = std::max(max_id, entry.job_id);
  }
  if (max_id == 0) return;

  const util::MutexLock lock(mutex_);
  for (std::uint64_t id = 1; id <= max_id; ++id) {
    const auto it = jobs.find(id);
    const Replay replay = it != jobs.end() ? it->second : Replay{};
    const bool has_payload = archived.count(id) != 0;

    JobState state = JobState::kQueued;
    std::optional<io::ScanCheckpoint> checkpoint;
    std::uint64_t probes = replay.probes;
    std::string detail;
    if (!replay.seen_admitted) {
      // Orphan id: its admission record was in the lost tail.  The client
      // never saw a reply (replies follow the journal append), so it will
      // retry under a fresh id; never rerun this one.
      state = has_payload ? JobState::kCompleted : JobState::kFailed;
      detail = has_payload ? "archived result without a journaled admission"
                           : "journal admission record lost";
    } else if (replay.rejected) {
      state = JobState::kRejected;
      detail = replay.detail;
    } else if (replay.terminal.has_value()) {
      state = *replay.terminal == JournalKind::kCompleted
                  ? JobState::kCompleted
                  : (*replay.terminal == JournalKind::kCancelled
                         ? JobState::kCancelled
                         : JobState::kFailed);
      detail = replay.terminal_detail;
    } else if (has_payload) {
      // Crashed between the archive append and the terminal journal
      // record: the payload is authoritative — never run (and append)
      // a second time.
      state = JobState::kCompleted;
      detail = "archive payload recovered";
    } else {
      // Interrupted mid-run or never started: resume from the last
      // published barrier checkpoint, or rerun from scratch — the
      // determinism contract makes the output byte-identical either way.
      std::optional<io::ScanCheckpoint> saved =
          io::load_checkpoint_file(checkpoint_path(id));
      if (saved.has_value()) {
        if (saved->header.first_prefix == replay.spec.first_prefix &&
            saved->header.prefix_bits == replay.spec.prefix_bits &&
            saved->header.seed == replay.spec.scan_seed) {
          state = JobState::kPreempted;
          probes = saved->result.probes_sent;
          checkpoint = std::move(saved);
        } else {
          state = JobState::kFailed;
          detail = kFailRecoveryCheckpointMismatch;
        }
      } else {
        state = JobState::kQueued;
        detail = replay.slices > 0 ? "rerun from scratch after crash" : "";
      }
    }

    scheduler_.restore(replay.spec, state, probes, replay.slices,
                       std::move(checkpoint), detail, now());
    runners_.push_back(job_state_terminal(state)
                           ? nullptr
                           : std::make_unique<JobRunner>(replay.spec));
    if (replay.seen_admitted && !replay.spec.request_key.empty()) {
      Submission submission;
      submission.admitted = !replay.rejected;
      submission.job_id = id;
      submission.reason = replay.reason;
      submission.detail = replay.detail;
      request_keys_[replay.spec.request_key] = std::move(submission);
    }
    lanes_[0].inc(ids_.jobs_recovered);
    JobEvent event;
    event.job_id = id;
    event.event = "recovered";
    event.name = replay.spec.name;
    event.reason = job_state_name(state);
    event.detail = detail;
    event.probes = probes;
    events_->emit(event);
  }
}

void Daemon::wait() {
  if (!started_) return;
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (summary_written_) return;
  summary_written_ = true;
  const obs::MetricsSnapshot snapshot = registry_.snapshot();
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  counters.reserve(snapshot.counter_names.size());
  for (std::size_t i = 0; i < snapshot.counter_names.size(); ++i) {
    counters.emplace_back(snapshot.counter_names[i], snapshot.counters[i]);
  }
  bool drained = false;
  {
    // Every thread has been joined, but the capability contract is about
    // access discipline, not liveness — take the lock like everyone else.
    const util::MutexLock lock(mutex_);
    drained = scheduler_.draining();
  }
  events_->summary(drained, /*clean_shutdown=*/true, counters);
}

bool Daemon::reap_for_shutdown() {
  if (journal_ != nullptr) {
    // Journaled drain keeps waiting jobs: their admission is durable, so
    // they simply resume on the next boot (the continuous-scanning
    // story).  Only running slices hold the shutdown open.
    return scheduler_.running_count() == 0;
  }
  for (const JobView& view : scheduler_.views()) {
    if (job_state_terminal(view.state) || view.state == JobState::kRunning) {
      continue;
    }
    if (scheduler_.cancel(view.id) == CancelOutcome::kCancelled) {
      lanes_[0].inc(ids_.jobs_cancelled);
      JobEvent event;
      event.job_id = view.id;
      event.event = "cancelled";
      event.detail = "daemon shutdown";
      events_->emit(event);
    }
  }
  return scheduler_.running_count() == 0;
}

void Daemon::io_loop() {
  std::vector<Connection> clients;
  std::string payload;
  while (true) {
    if (shutdown_async_.exchange(false, std::memory_order_relaxed)) {
      request_shutdown();  // turn the signal-handler latch into a drain
    }
    {
      const util::MutexLock lock(mutex_);
      if (shutdown_requested_ && !drain_cancelled_ &&
          drain_deadline_at_ != 0 && now() >= drain_deadline_at_) {
        // Drain deadline blown: hard-cancel running slices.  The deadline
        // trades the tails of the running slices (cancellation is
        // terminal) for a bounded shutdown time.
        drain_cancelled_ = true;
        for (const JobView& view : scheduler_.views()) {
          if (view.state != JobState::kRunning) continue;
          if (scheduler_.cancel(view.id) == CancelOutcome::kSignalled) {
            JobRunner* runner = runners_[view.id - 1].get();
            if (runner != nullptr) runner->request_cancel();
          }
        }
      }
      if (shutdown_requested_ && reap_for_shutdown()) {
        stop_workers_ = true;
        break;
      }
    }
    std::vector<int> fds;
    fds.reserve(clients.size() + 2);
    fds.push_back(listener_.fd());
    fds.push_back(wake_.read_fd());
    for (const Connection& client : clients) fds.push_back(client.fd());
    const std::vector<int> ready = wait_readable(fds, 100);

    for (const int fd : ready) {
      if (fd == wake_.read_fd()) {
        wake_.drain();
      } else if (fd == listener_.fd()) {
        if (auto client = listener_.accept_client(); client.has_value()) {
          clients.push_back(std::move(*client));
        }
      }
    }
    for (Connection& client : clients) {
      bool alive = client.valid();
      for (const int fd : ready) {
        if (alive && fd == client.fd()) {
          if (client.read_frame(payload)) {
            const std::string reply = handle_request(payload);
            alive = !reply.empty() && client.write_frame(reply);
          } else {
            alive = false;
          }
        }
      }
      if (!alive) client.close();
    }
    std::erase_if(clients,
                  [](const Connection& client) { return !client.valid(); });
  }
  cv_.notify_all();
}

std::string Daemon::handle_request(std::string_view payload) {
  const std::optional<MsgType> type = peek_type(payload);
  if (!type.has_value()) return error_reply("unknown message type");
  Reader reader(payload);
  reader.u8();  // consume the type byte
  switch (*type) {
    case MsgType::kSubmit:
      return handle_submit(reader);
    case MsgType::kStatus:
      return handle_status(reader);
    case MsgType::kList:
      return handle_list();
    case MsgType::kCancel:
      return handle_cancel(reader);
    case MsgType::kDiff:
      return handle_diff(reader);
    case MsgType::kVerify:
      return handle_verify(reader);
    case MsgType::kShutdown: {
      request_shutdown();
      Writer w(MsgType::kOk);
      return w.bytes();
    }
    default:
      return error_reply("unexpected message type");
  }
}

std::string Daemon::handle_submit(Reader& reader) {
  const std::optional<JobSpec> spec = decode_spec(reader);
  if (!spec.has_value()) return error_reply("malformed submit");

  const bool keyed = journal_ != nullptr && !spec->request_key.empty();
  if (keyed) {
    // Idempotent submit: a retried request key replays the original
    // verdict verbatim — no new job, no new events, no journal append.
    const util::MutexLock lock(mutex_);
    const auto it = request_keys_.find(spec->request_key);
    if (it != request_keys_.end()) {
      Writer w(MsgType::kSubmitReply);
      w.put_bool(it->second.admitted);
      w.put_u64(it->second.job_id);
      w.put_string(it->second.reason);
      w.put_string(it->second.detail);
      return w.bytes();
    }
  }

  Submission submission;
  {
    const util::MutexLock lock(mutex_);
    submission = scheduler_.submit(*spec, now());
    if (keyed) request_keys_[spec->request_key] = submission;
    runners_.push_back(submission.admitted
                           ? std::make_unique<JobRunner>(*spec)
                           : nullptr);
    lanes_[0].inc(ids_.jobs_submitted);
    JobEvent event;
    event.job_id = submission.job_id;
    event.event = "submitted";
    event.name = spec->name;
    event.has_priority = true;
    event.priority = spec->priority;
    events_->emit(event);
    JobEvent verdict;
    verdict.job_id = submission.job_id;
    if (submission.admitted) {
      lanes_[0].inc(ids_.jobs_admitted);
      verdict.event = "admitted";
    } else {
      lanes_[0].inc(ids_.jobs_rejected);
      verdict.event = "rejected";
      verdict.reason = submission.reason;
      verdict.detail = submission.detail;
    }
    events_->emit(verdict);
  }

  if (journal_ != nullptr) {
    // Durable admission: the reply leaves only after the admission record
    // is journaled.  A crash before this point means the client saw no
    // reply and can blindly retry; a crash after it means recovery
    // re-admits the job the client was told about.  The append happens
    // before cv_.notify_all() so no worker journals a kStarted record
    // ahead of the admission it refers to.
    JournalRecord record;
    record.kind = submission.admitted ? JournalKind::kAdmitted
                                      : JournalKind::kRejected;
    record.job_id = submission.job_id;
    record.spec = *spec;
    record.reason = submission.reason;
    record.detail = submission.detail;
    journal_->append(record);
    FR_CRASH_POINT(util::crash::kSubmitJournaled);
  }
  cv_.notify_all();

  Writer w(MsgType::kSubmitReply);
  w.put_bool(submission.admitted);
  w.put_u64(submission.job_id);
  w.put_string(submission.reason);
  w.put_string(submission.detail);
  return w.bytes();
}

std::string Daemon::handle_status(Reader& reader) {
  const std::uint64_t job_id = reader.u64();
  if (!reader.ok()) return error_reply("malformed status");
  std::optional<JobView> view;
  {
    const util::MutexLock lock(mutex_);
    view = scheduler_.view(job_id);
  }
  Writer w(MsgType::kStatusReply);
  w.put_bool(view.has_value());
  if (view.has_value()) encode_view(w, *view);
  return w.bytes();
}

std::string Daemon::handle_list() {
  std::vector<JobView> views;
  {
    const util::MutexLock lock(mutex_);
    views = scheduler_.views();
  }
  Writer w(MsgType::kListReply);
  w.put_varint(views.size());
  for (const JobView& view : views) encode_view(w, view);
  return w.bytes();
}

std::string Daemon::handle_cancel(Reader& reader) {
  const std::uint64_t job_id = reader.u64();
  if (!reader.ok()) return error_reply("malformed cancel");
  CancelOutcome outcome = CancelOutcome::kNotFound;
  {
    const util::MutexLock lock(mutex_);
    outcome = scheduler_.cancel(job_id);
    if (outcome == CancelOutcome::kSignalled) {
      JobRunner* runner = runners_[job_id - 1].get();
      if (runner != nullptr) runner->request_cancel();
    } else if (outcome == CancelOutcome::kCancelled) {
      lanes_[0].inc(ids_.jobs_cancelled);
      JobEvent event;
      event.job_id = job_id;
      event.event = "cancelled";
      event.detail = "cancelled before running";
      events_->emit(event);
    }
  }
  if (journal_ != nullptr && outcome == CancelOutcome::kCancelled) {
    // A running job's cancellation is journaled by its worker when the
    // slice actually stops; a waiting job's is terminal right here.
    JournalRecord record;
    record.kind = JournalKind::kCancelled;
    record.job_id = job_id;
    record.detail = "cancelled before running";
    journal_->append(record);
    io::discard_checkpoint(checkpoint_path(job_id));
  }
  Writer w(MsgType::kCancelReply);
  w.put_u8(static_cast<std::uint8_t>(outcome));
  return w.bytes();
}

std::string Daemon::handle_diff(Reader& reader) {
  const std::uint64_t before_id = reader.u64();
  const std::uint64_t after_id = reader.u64();
  if (!reader.ok()) return error_reply("malformed diff");
  // Archive reads take the archive's own lock, not the daemon's — a diff
  // of two large snapshots must not stall admissions.
  const std::optional<io::LoadedArchive> before = archive_->load(before_id);
  const std::optional<io::LoadedArchive> after = archive_->load(after_id);
  Writer w(MsgType::kDiffReply);
  if (!before.has_value() || !after.has_value()) {
    w.put_bool(false);
    w.put_string("job has no archived result");
    return w.bytes();
  }
  const std::optional<analysis::ChurnReport> report =
      analysis::diff_snapshots(*before, *after);
  if (!report.has_value()) {
    w.put_bool(false);
    w.put_string("snapshots are not comparable");
    return w.bytes();
  }
  w.put_bool(true);
  w.put_u64(report->interfaces_before);
  w.put_u64(report->interfaces_after);
  w.put_u64(report->interfaces_appeared);
  w.put_u64(report->interfaces_vanished);
  w.put_u64(report->routes_compared);
  w.put_u64(report->routes_changed_hops);
  w.put_u64(report->routes_changed_length);
  return w.bytes();
}

std::string Daemon::handle_verify(Reader& reader) {
  const std::uint64_t job_id = reader.u64();
  if (!reader.ok()) return error_reply("malformed verify");
  const std::optional<std::string> payload = archive_->payload_bytes(job_id);
  Writer w(MsgType::kVerifyReply);
  w.put_bool(payload.has_value());
  if (payload.has_value()) {
    w.put_u64(payload->size());
    w.put_u64(fnv1a(*payload));
  }
  return w.bytes();
}

void Daemon::worker_loop(int worker_index) {
  const obs::MetricsLane lane =
      lanes_[static_cast<std::size_t>(1 + worker_index)];
  while (true) {
    // Dispatch state carried from the locked acquire phase into the
    // unlocked slice execution.  Two scoped MutexLock regions (acquire,
    // release) instead of one unique_lock with manual unlock/relock: the
    // thread-safety analysis — and a reader — sees exactly where the lock
    // is held, and the scan slice provably runs outside it.
    std::optional<std::uint64_t> id;
    std::optional<io::ScanCheckpoint> checkpoint;
    JobRunner* runner = nullptr;
    bool resumed = false;
    std::uint64_t base_probes = 0;
    std::uint64_t slice_no = 0;
    {
      const util::MutexLock lock(mutex_);
      while (!stop_workers_ && !scheduler_.has_dispatchable(now())) {
        cv_.wait(mutex_);
      }
      if (stop_workers_) return;
      id = scheduler_.acquire(now());
      if (!id.has_value()) continue;

      checkpoint = scheduler_.take_checkpoint(*id);
      runner = runners_[*id - 1].get();
      resumed = checkpoint.has_value();
      base_probes = resumed ? checkpoint->result.probes_sent : 0;
      slice_no = scheduler_.view(*id)->slices;
      lane.inc(ids_.slices_dispatched);
      if (resumed) lane.inc(ids_.jobs_resumed);
      JobEvent event;
      event.job_id = *id;
      event.event = resumed ? "resumed" : "running";
      event.worker = worker_index;
      event.slice = slice_no;
      event.probes = base_probes;
      events_->emit(event);
    }

    if (journal_ != nullptr) {
      JournalRecord record;
      record.kind = JournalKind::kStarted;
      record.job_id = *id;
      record.probes = base_probes;
      record.slices = slice_no;
      journal_->append(record);
      FR_CRASH_POINT(util::crash::kJobStarted);
    }

    // Checkpoint publication is throttled to a real-time cadence, tracked
    // per job so scheduler timeslicing cannot defeat it: sim barriers —
    // preemption quanta included — fire on the virtual clock, which
    // outruns the wall clock by orders of magnitude, and recovery only
    // ever reads the newest file.  A preemption barrier needs no publish
    // of its own: the preempt checkpoint stays in memory for resumption,
    // and a crash simply resumes from the last published file (or reruns
    // from scratch) with byte-identical output.
    SliceResult slice = runner->run_slice(
        checkpoint, [&](const io::ScanCheckpoint& barrier_checkpoint) {
          BarrierDecision decision;
          bool due = false;
          {
            const util::MutexLock barrier_lock(mutex_);
            decision = scheduler_.on_barrier(
                *id, barrier_checkpoint.result.probes_sent, now());
            if (journal_ != nullptr && decision != BarrierDecision::kCancel) {
              util::Nanos& published_at = checkpoint_published_at_[*id];
              const util::Nanos barrier_now = now();
              if (published_at == 0 ||
                  barrier_now - published_at >= kCheckpointPublishInterval) {
                // Claimed optimistically: if the publish below fails, the
                // retry waits a full interval — fine, publish failure is
                // an abnormal path and retrying every barrier would melt.
                published_at = barrier_now;
                due = true;
              }
            }
          }
          if (due) {
            // Publish the barrier durably, outside the daemon lock:
            // checkpoint file first (atomic rename), then the journal
            // record that makes it the job's resume point.  A crash
            // between the two resumes from this same checkpoint anyway —
            // recovery trusts the newest matching file on disk.  The
            // per-file fsync follows the journal's durability contract:
            // rename atomicity covers process death on its own, so only
            // kFsync pays the power-loss stall at every barrier.
            if (io::save_checkpoint_atomic(
                    checkpoint_path(*id), barrier_checkpoint,
                    options_.durability == Durability::kFsync)) {
              JournalRecord record;
              record.kind = JournalKind::kBarrier;
              record.job_id = *id;
              record.probes = barrier_checkpoint.result.probes_sent;
              record.slices = slice_no;
              journal_->append(record);
              FR_CRASH_POINT(util::crash::kBarrierPublished);
            }
          }
          return decision;
        });

    // The archive append happens unlocked: JobArchive serializes itself,
    // and holding the daemon lock across file I/O would stall admissions
    // (and create a daemon→archive lock-order edge for no benefit).
    std::string fail_detail;
    if (slice.outcome == SliceOutcome::kCompleted) {
      if (archive_->append(*id, slice.result, runner->archive_header())) {
        FR_CRASH_POINT(util::crash::kJobArchived);
      } else {
        fail_detail = "archive append failed";
      }
    }

    {
      const util::MutexLock lock(mutex_);
      lane.inc(ids_.probes_executed, slice.probes_total > base_probes
                                         ? slice.probes_total - base_probes
                                         : 0);
      JobEvent done;
      done.job_id = *id;
      done.worker = worker_index;
      done.slice = slice_no;
      done.probes = slice.probes_total;
      switch (slice.outcome) {
        case SliceOutcome::kCompleted:
          if (fail_detail.empty()) {
            scheduler_.release_completed(*id, slice.probes_total, now());
            lane.inc(ids_.jobs_completed);
            done.event = "completed";
          } else {
            scheduler_.release_failed(*id, fail_detail);
            lane.inc(ids_.jobs_failed);
            done.event = "failed";
            done.detail = fail_detail;
          }
          break;
        case SliceOutcome::kPreempted:
          scheduler_.release_preempted(*id, std::move(*slice.checkpoint));
          lane.inc(ids_.jobs_preempted);
          done.event = "preempted";
          break;
        case SliceOutcome::kCancelled:
          scheduler_.release_cancelled(*id);
          lane.inc(ids_.jobs_cancelled);
          done.event = "cancelled";
          break;
      }
      if (slice.outcome != SliceOutcome::kPreempted) {
        checkpoint_published_at_.erase(*id);
      }
      events_->emit(done);
    }

    if (journal_ != nullptr && slice.outcome != SliceOutcome::kPreempted) {
      // Terminal record after the archive append (recovery invariant:
      // archive payload present ⇒ the job may be marked completed, so the
      // payload must hit the file first), outside the daemon lock.
      JournalRecord record;
      record.job_id = *id;
      record.probes = slice.probes_total;
      record.slices = slice_no;
      switch (slice.outcome) {
        case SliceOutcome::kCompleted:
          record.kind = fail_detail.empty() ? JournalKind::kCompleted
                                            : JournalKind::kFailed;
          record.detail = fail_detail;
          break;
        case SliceOutcome::kCancelled:
          record.kind = JournalKind::kCancelled;
          break;
        case SliceOutcome::kPreempted:
          break;  // unreachable
      }
      journal_->append(record);
      FR_CRASH_POINT(util::crash::kJobTerminal);
      io::discard_checkpoint(checkpoint_path(*id));
    }
    cv_.notify_all();
    wake_.wake();  // let the I/O loop re-evaluate drain progress
  }
}

}  // namespace flashroute::svc
