#include "svc/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "svc/wire.h"
#include "util/clock.h"

namespace flashroute::svc {

std::optional<Client> Client::connect(const std::string& socket_path,
                                      int timeout_ms) {
  const util::MonotonicClock clock;
  const util::Nanos deadline =
      clock.now() + static_cast<util::Nanos>(timeout_ms) * util::kMillisecond;
  while (true) {
    if (auto connection = connect_unix(socket_path); connection.has_value()) {
      return Client(std::move(*connection));
    }
    if (clock.now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

std::optional<std::string> Client::roundtrip(const std::string& request) {
  if (!connection_.write_frame(request)) return std::nullopt;
  std::string reply;
  if (!connection_.read_frame(reply)) return std::nullopt;
  return reply;
}

std::optional<Submission> Client::submit(const JobSpec& spec) {
  Writer w(MsgType::kSubmit);
  encode_spec(w, spec);
  const auto reply = roundtrip(w.bytes());
  if (!reply.has_value() || peek_type(*reply) != MsgType::kSubmitReply) {
    return std::nullopt;
  }
  Reader r(*reply);
  r.u8();
  Submission submission;
  submission.admitted = r.boolean();
  submission.job_id = r.u64();
  submission.reason = r.string();
  submission.detail = r.string();
  if (!r.ok()) return std::nullopt;
  return submission;
}

std::optional<JobView> Client::status(std::uint64_t job_id) {
  Writer w(MsgType::kStatus);
  w.put_u64(job_id);
  const auto reply = roundtrip(w.bytes());
  if (!reply.has_value() || peek_type(*reply) != MsgType::kStatusReply) {
    return std::nullopt;
  }
  Reader r(*reply);
  r.u8();
  if (!r.boolean()) return std::nullopt;  // unknown job id
  return decode_view(r);
}

std::optional<std::vector<JobView>> Client::list() {
  Writer w(MsgType::kList);
  const auto reply = roundtrip(w.bytes());
  if (!reply.has_value() || peek_type(*reply) != MsgType::kListReply) {
    return std::nullopt;
  }
  Reader r(*reply);
  r.u8();
  const std::uint64_t count = r.varint();
  std::vector<JobView> views;
  views.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    auto view = decode_view(r);
    if (!view.has_value()) return std::nullopt;
    views.push_back(std::move(*view));
  }
  return views;
}

std::optional<CancelOutcome> Client::cancel(std::uint64_t job_id) {
  Writer w(MsgType::kCancel);
  w.put_u64(job_id);
  const auto reply = roundtrip(w.bytes());
  if (!reply.has_value() || peek_type(*reply) != MsgType::kCancelReply) {
    return std::nullopt;
  }
  Reader r(*reply);
  r.u8();
  const std::uint8_t outcome = r.u8();
  if (!r.ok() ||
      outcome > static_cast<std::uint8_t>(CancelOutcome::kSignalled)) {
    return std::nullopt;
  }
  return static_cast<CancelOutcome>(outcome);
}

std::optional<DiffReply> Client::diff(std::uint64_t before_id,
                                      std::uint64_t after_id) {
  Writer w(MsgType::kDiff);
  w.put_u64(before_id);
  w.put_u64(after_id);
  const auto reply = roundtrip(w.bytes());
  if (!reply.has_value() || peek_type(*reply) != MsgType::kDiffReply) {
    return std::nullopt;
  }
  Reader r(*reply);
  r.u8();
  DiffReply diff;
  diff.ok = r.boolean();
  if (!diff.ok) {
    diff.error = r.string();
    return r.ok() ? std::optional<DiffReply>(diff) : std::nullopt;
  }
  diff.interfaces_before = r.u64();
  diff.interfaces_after = r.u64();
  diff.interfaces_appeared = r.u64();
  diff.interfaces_vanished = r.u64();
  diff.routes_compared = r.u64();
  diff.routes_changed_hops = r.u64();
  diff.routes_changed_length = r.u64();
  if (!r.ok()) return std::nullopt;
  return diff;
}

std::optional<VerifyReply> Client::verify(std::uint64_t job_id) {
  Writer w(MsgType::kVerify);
  w.put_u64(job_id);
  const auto reply = roundtrip(w.bytes());
  if (!reply.has_value() || peek_type(*reply) != MsgType::kVerifyReply) {
    return std::nullopt;
  }
  Reader r(*reply);
  r.u8();
  VerifyReply verify;
  verify.found = r.boolean();
  if (verify.found) {
    verify.payload_size = r.u64();
    verify.payload_fnv1a = r.u64();
  }
  if (!r.ok()) return std::nullopt;
  return verify;
}

bool Client::shutdown() {
  Writer w(MsgType::kShutdown);
  const auto reply = roundtrip(w.bytes());
  return reply.has_value() && peek_type(*reply) == MsgType::kOk;
}

std::optional<JobView> Client::wait_job(std::uint64_t job_id, int poll_ms) {
  while (true) {
    auto view = status(job_id);
    if (!view.has_value()) return std::nullopt;
    if (job_state_terminal(view->state)) return view;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

bool Client::wait_all(int poll_ms) {
  while (true) {
    const auto views = list();
    if (!views.has_value()) return false;
    bool pending = false;
    for (const JobView& view : *views) {
      if (!job_state_terminal(view.state)) pending = true;
    }
    if (!pending) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

}  // namespace flashroute::svc
