#include "svc/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "svc/wire.h"

namespace flashroute::svc {

namespace {

/// read(2) exactly `n` bytes; false on EOF or hard error.
bool read_full(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
    } else if (r == 0) {
      return false;  // orderly EOF mid-frame or between frames
    } else if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

/// write(2) exactly `n` bytes; false when the peer is gone.
bool write_full(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, data + sent, n - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
    } else if (w < 0 && errno != EINTR) {
      return false;
    }
  }
  return true;
}

}  // namespace

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Connection::read_frame(std::string& payload) {
  if (fd_ < 0) return false;
  char header[4];
  if (!read_full(fd_, header, sizeof(header))) return false;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[i]))
              << (8 * i);
  }
  if (length > kMaxFrame) return false;  // protocol violation: drop peer
  payload.resize(length);
  return length == 0 || read_full(fd_, payload.data(), length);
}

bool Connection::write_frame(std::string_view payload) {
  if (fd_ < 0 || payload.size() > kMaxFrame) return false;
  const auto length = static_cast<std::uint32_t>(payload.size());
  char header[4];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((length >> (8 * i)) & 0xFF);
  }
  return write_full(fd_, header, sizeof(header)) &&
         write_full(fd_, payload.data(), payload.size());
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(path_.c_str());
  }
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      ::unlink(path_.c_str());
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

std::optional<ListenSocket> ListenSocket::bind_and_listen(
    const std::string& path) {
  sockaddr_un addr{};
  if (path.size() + 1 > sizeof(addr.sun_path)) return std::nullopt;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // clear a stale socket from a crashed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  ListenSocket listener;
  listener.fd_ = fd;
  listener.path_ = path;
  return listener;
}

std::optional<Connection> ListenSocket::accept_client() {
  if (fd_ < 0) return std::nullopt;
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Connection(client);
    if (errno != EINTR) return std::nullopt;
  }
}

std::optional<Connection> connect_unix(const std::string& path,
                                       int* errno_out) {
  if (errno_out != nullptr) *errno_out = 0;
  sockaddr_un addr{};
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    if (errno_out != nullptr) *errno_out = ENAMETOOLONG;
    return std::nullopt;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (errno_out != nullptr) *errno_out = errno;
    return std::nullopt;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno != EINTR) {
      if (errno_out != nullptr) *errno_out = errno;
      ::close(fd);
      return std::nullopt;
    }
  }
  return Connection(fd);
}

WakePipe::WakePipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    read_fd_ = fds[0];
    write_fd_ = fds[1];
  }
}

WakePipe::~WakePipe() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
}

void WakePipe::wake() {
  if (write_fd_ < 0) return;
  const char byte = 1;
  while (::write(write_fd_, &byte, 1) < 0 && errno == EINTR) {
  }
}

void WakePipe::drain() {
  if (read_fd_ < 0) return;
  char buffer[64];
  while (true) {
    pollfd probe{};
    probe.fd = read_fd_;
    probe.events = POLLIN;
    if (::poll(&probe, 1, 0) <= 0 || (probe.revents & POLLIN) == 0) return;
    if (::read(read_fd_, buffer, sizeof(buffer)) <= 0) return;
  }
}

std::vector<int> wait_readable(const std::vector<int>& fds, int timeout_ms) {
  std::vector<pollfd> polls;
  polls.reserve(fds.size());
  for (const int fd : fds) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    polls.push_back(p);
  }
  std::vector<int> ready;
  const int n = ::poll(polls.data(), polls.size(), timeout_ms);
  if (n <= 0) return ready;  // timeout, or EINTR — caller just re-polls
  for (const pollfd& p : polls) {
    if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) ready.push_back(p.fd);
  }
  return ready;
}

}  // namespace flashroute::svc
