#include "svc/job_runner.h"

#include <utility>

#include "core/tracer.h"
#include "sim/params.h"
#include "sim/runtime.h"

namespace flashroute::svc {

namespace {

sim::SimParams sim_params_for(const JobSpec& spec) {
  sim::SimParams params;
  params.seed = spec.topology_seed;
  params.prefix_bits = spec.prefix_bits;
  params.first_prefix = spec.first_prefix;
  return params;
}

core::TracerConfig tracer_config_for(const JobSpec& spec) {
  core::TracerConfig config;
  config.first_prefix = spec.first_prefix;
  config.prefix_bits = spec.prefix_bits;
  config.probes_per_second = spec.probes_per_second;
  config.split_ttl = spec.split_ttl;
  config.max_ttl = spec.max_ttl;
  config.gap_limit = spec.gap_limit;
  config.min_round_duration = spec.min_round_duration;
  config.preprobe = spec.preprobe_random ? core::PreprobeMode::kRandom
                                         : core::PreprobeMode::kNone;
  config.seed = spec.scan_seed;
  config.target_seed = spec.target_seed;
  config.collect_routes = spec.collect_routes;
  config.max_retransmits = spec.max_retransmits;
  config.adaptive_backoff = spec.adaptive_backoff;
  config.checkpoint_interval = spec.checkpoint_interval;
  return config;
}

}  // namespace

JobRunner::JobRunner(const JobSpec& spec) : spec_(spec) {}

const sim::Topology& JobRunner::topology() {
  if (topology_ == nullptr) {
    topology_ = std::make_unique<sim::Topology>(sim_params_for(spec_));
  }
  return *topology_;
}

io::ArchiveHeader JobRunner::archive_header() const {
  io::ArchiveHeader header;
  header.first_prefix = spec_.first_prefix;
  header.prefix_bits = spec_.prefix_bits;
  header.seed = spec_.scan_seed;
  return header;
}

SliceResult JobRunner::run_slice(
    const std::optional<io::ScanCheckpoint>& resume,
    const std::function<BarrierDecision(const io::ScanCheckpoint&)>&
        on_barrier) {
  sim::SimNetwork network(topology());
  const util::Nanos start =
      resume.has_value() ? resume->virtual_now : util::Nanos{0};
  sim::SimScanRuntime runtime(network, spec_.probes_per_second, start);

  SliceResult slice;
  core::TracerConfig config = tracer_config_for(spec_);
  if (resume.has_value()) config.resume_from = &*resume;
  config.cancel = &cancel_;
  config.checkpoint_sink = [&](const io::ScanCheckpoint& checkpoint) {
    switch (on_barrier(checkpoint)) {
      case BarrierDecision::kContinue:
        return true;
      case BarrierDecision::kPreempt:
        slice.checkpoint = checkpoint;  // deep copy: the slice owns it now
        return false;
      case BarrierDecision::kCancel:
        break;
    }
    slice.checkpoint.reset();
    return false;
  };

  core::Tracer tracer(config, runtime);
  core::ScanResult result = tracer.run();
  slice.probes_total = result.probes_sent;

  if (!tracer.aborted()) {
    slice.outcome = SliceOutcome::kCompleted;
    slice.result = std::move(result);
  } else if (slice.checkpoint.has_value()) {
    slice.outcome = SliceOutcome::kPreempted;
  } else {
    slice.outcome = SliceOutcome::kCancelled;
  }
  return slice;
}

}  // namespace flashroute::svc
