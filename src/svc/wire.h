// frd wire protocol: framing and message codec (DESIGN.md §12).
//
// Transport framing (the socket layer's job, src/svc/socket.h):
//
//   [u32 LE payload length][payload bytes]
//
// with payload length capped at kMaxFrame.  This header describes the
// *payload* encoding: byte 0 is the MsgType, the rest is a flat sequence of
// little-endian fixed-width integers, LEB128 varints, IEEE-754 doubles
// (bit-cast to u64 LE), and length-prefixed strings — no self-description,
// both ends share this file.  The codec is pure buffer-in/buffer-out and
// does no I/O, so it is unit-testable without a socket and keeps the
// daemon's syscall surface confined to socket.cc.
//
// A malformed payload never traps: Reader sets a sticky error flag and
// yields zeros, and message decoders return nullopt.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "svc/job.h"
#include "svc/scheduler.h"

namespace flashroute::svc {

/// Frames larger than this are a protocol violation; the peer is dropped.
inline constexpr std::uint32_t kMaxFrame = 1u << 20;

enum class MsgType : std::uint8_t {
  kSubmit = 1,
  kSubmitReply = 2,
  kStatus = 3,
  kStatusReply = 4,
  kList = 5,
  kListReply = 6,
  kCancel = 7,
  kCancelReply = 8,
  kDiff = 9,
  kDiffReply = 10,
  kVerify = 11,
  kVerifyReply = 12,
  kShutdown = 13,
  kOk = 14,
  kError = 15,
};

/// Append-only payload builder.
class Writer {
 public:
  /// A bare buffer (no leading MsgType byte) — used by non-socket record
  /// formats built on this codec, e.g. the job journal (svc/journal.h).
  Writer() = default;
  explicit Writer(MsgType type) { put_u8(static_cast<std::uint8_t>(type)); }

  void put_u8(std::uint8_t v) { buffer_ += static_cast<char>(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_varint(std::uint64_t v);
  void put_f64(double v);
  void put_string(std::string_view v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  const std::string& bytes() const noexcept { return buffer_; }

 private:
  std::string buffer_;
};

/// Bounds-checked payload reader with a sticky error flag.
class Reader {
 public:
  explicit Reader(std::string_view payload) : data_(payload) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  double f64();
  std::string string();
  bool boolean() { return u8() != 0; }

  bool ok() const noexcept { return ok_; }
  bool done() const noexcept { return ok_ && pos_ == data_.size(); }

 private:
  bool need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Reads the MsgType of a framed payload (nullopt when empty/unknown).
std::optional<MsgType> peek_type(std::string_view payload);

// Field-group codecs shared by daemon and client.
void encode_spec(Writer& w, const JobSpec& spec);
std::optional<JobSpec> decode_spec(Reader& r);

void encode_view(Writer& w, const JobView& view);
std::optional<JobView> decode_view(Reader& r);

}  // namespace flashroute::svc
