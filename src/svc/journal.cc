#include "svc/journal.h"

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <utility>

#include "svc/wire.h"
#include "util/crash_point.h"

namespace flashroute::svc {

namespace {

constexpr char kJournalMagic[4] = {'F', 'R', 'W', 'J'};
// magic + u32 size before the payload; u32 size echo after it.
constexpr std::uint64_t kFrameHeaderBytes = 4 + 4;
constexpr std::uint64_t kFrameTrailerBytes = 4;
// Journal payloads are one spec plus short strings; anything larger than
// the wire frame cap is damage, not data.
constexpr std::uint64_t kMaxJournalPayload = kMaxFrame;

void put_u32_le(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

std::uint64_t read_le(const char* bytes, int n) {
  std::uint64_t value = 0;
  for (int i = 0; i < n; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

std::string encode_record(const JournalRecord& record) {
  Writer w;  // bare buffer: journal payloads carry no MsgType byte
  w.put_u8(static_cast<std::uint8_t>(record.kind));
  w.put_u64(record.job_id);
  encode_spec(w, record.spec);
  w.put_string(record.reason);
  w.put_string(record.detail);
  w.put_u64(record.probes);
  w.put_u64(record.slices);
  return w.bytes();
}

std::optional<JournalRecord> decode_record(std::string_view payload) {
  Reader r(payload);
  JournalRecord record;
  const std::uint8_t kind = r.u8();
  if (kind < static_cast<std::uint8_t>(JournalKind::kAdmitted) ||
      kind > static_cast<std::uint8_t>(JournalKind::kFailed)) {
    return std::nullopt;
  }
  record.kind = static_cast<JournalKind>(kind);
  record.job_id = r.u64();
  std::optional<JobSpec> spec = decode_spec(r);
  if (!spec.has_value()) return std::nullopt;
  record.spec = std::move(*spec);
  record.reason = r.string();
  record.detail = r.string();
  record.probes = r.u64();
  record.slices = r.u64();
  if (!r.done()) return std::nullopt;  // trailing garbage is damage too
  return record;
}

}  // namespace

std::optional<Durability> parse_durability(std::string_view name) {
  if (name == "none") return Durability::kNone;
  if (name == "flush") return Durability::kFlush;
  if (name == "fsync") return Durability::kFsync;
  return std::nullopt;
}

JobJournal::JobJournal(std::string path, Durability durability)
    : path_(std::move(path)), durability_(durability) {
  const util::MutexLock lock(mutex_);
  {
    // Create the file if absent without clobbering an existing one.
    std::ofstream create(path_, std::ios::binary | std::ios::app);
    if (!create) return;
  }
  std::string contents;
  {
    std::ifstream in(path_, std::ios::binary);
    if (!in) return;
    in.seekg(0, std::ios::end);
    contents.resize(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    if (!contents.empty()) {
      in.read(contents.data(), static_cast<std::streamsize>(contents.size()));
      if (!in) return;
    }
  }

  // Walk the frames; stop (and truncate) at the first record that is
  // incomplete, mis-framed, or whose payload does not decode — a crash
  // mid-append leaves only a partial tail, never a hole.
  const std::uint64_t file_size = contents.size();
  std::uint64_t offset = 0;
  while (offset + kFrameHeaderBytes + kFrameTrailerBytes <= file_size) {
    const char* frame = contents.data() + offset;
    if (!std::equal(frame, frame + 4, kJournalMagic)) break;
    const std::uint64_t payload_size = read_le(frame + 4, 4);
    if (payload_size > kMaxJournalPayload) break;
    const std::uint64_t record_end =
        offset + kFrameHeaderBytes + payload_size + kFrameTrailerBytes;
    if (record_end > file_size) break;
    if (read_le(contents.data() + record_end - kFrameTrailerBytes, 4) !=
        payload_size) {
      break;
    }
    std::optional<JournalRecord> record = decode_record(std::string_view(
        frame + kFrameHeaderBytes, static_cast<std::size_t>(payload_size)));
    if (!record.has_value()) break;
    records_.push_back(std::move(*record));
    offset = record_end;
  }
  dropped_ = file_size - offset;
  if (dropped_ > 0) {
    // Rewrite the valid prefix: portable truncation, as JobArchive does.
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(contents.data(), static_cast<std::streamsize>(offset));
    out.flush();
    if (!out) return;
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) return;
  ok_ = true;
}

JobJournal::~JobJournal() {
  const util::MutexLock lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool JobJournal::ok() const {
  const util::MutexLock lock(mutex_);
  return ok_;
}

std::uint64_t JobJournal::recovered_bytes_dropped() const {
  const util::MutexLock lock(mutex_);
  return dropped_;
}

bool JobJournal::append(const JournalRecord& record) {
  const std::string payload = encode_record(record);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  frame.append(kJournalMagic, sizeof kJournalMagic);
  put_u32_le(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  put_u32_le(frame, static_cast<std::uint32_t>(payload.size()));

  const util::MutexLock lock(mutex_);
  if (!ok_) return false;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    ok_ = false;
    return false;
  }
  FR_CRASH_POINT(util::crash::kJournalAppend);
  if (durability_ == Durability::kNone) return true;
  if (std::fflush(file_) != 0) {
    ok_ = false;
    return false;
  }
  if (durability_ == Durability::kFsync &&
      ::fdatasync(::fileno(file_)) != 0) {
    ok_ = false;
    return false;
  }
  return true;
}

}  // namespace flashroute::svc
