// Multi-tenant scan-job scheduler (DESIGN.md §12).
//
// Pure decision logic, deliberately unsynchronized and wall-clock-free:
// every method takes an explicit `now`, so the daemon drives it with
// monotonic time under its own lock while the unit tests drive it with
// virtual time single-threaded — the same property that makes the sim
// engines testable makes the scheduler's decisions replayable.
//
// Because synchronization is external, the capability annotations live at
// the owner: `Daemon::scheduler_` is FR_GUARDED_BY(Daemon::mutex_), so the
// clang thread-safety build (DESIGN.md §13) rejects any daemon code path
// that consults the scheduler without that lock.  Single-threaded owners
// (tests, benches) need no lock and no annotation.
//
// Model:
//  * Admission — a submission is rejected (machine-readable reason) when
//    its spec is invalid, its rate alone exceeds the global pps budget,
//    the bounded queue of waiting jobs is full, or the daemon is draining.
//  * Dispatch — a free worker acquires the best runnable job: one whose
//    rate fits the unreserved share of the global budget and whose
//    token-bucket balance is in credit (when metering is on).  Order:
//    priority desc, fair-share progress (probes / weight) asc, id asc.
//  * Preemption — a running job consults the scheduler at every checkpoint
//    barrier of its spec (the only instants a scan can stop and resume
//    byte-identically).  It yields when the daemon is draining, when its
//    budget is in debt and a peer is waiting, when a higher-priority job
//    waits, or when an equal-priority peer has fallen behind in fair-share
//    progress — producing round-robin slicing at barrier granularity.
//  * Budgets — each job owns a util::TokenBucket charged with the probes
//    of each slice.  rate_multiplier scales the refill from the job's
//    nominal (virtual) pps to wall dispatch credit; 0 disables metering
//    (the right setting for virtual-time jobs, which execute probes far
//    faster than their nominal virtual rate), leaving fair-share ordering
//    in charge.  Metering is work-conserving: a job in debt keeps its
//    worker while no peer is waiting.
//
// The scheduler-tick and budget-accounting paths are FR_HOT: a daemon
// saturated with jobs calls them at every barrier of every running scan.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "svc/job.h"
#include "util/annotations.h"
#include "util/clock.h"
#include "util/token_bucket.h"

namespace flashroute::svc {

struct SchedulerConfig {
  /// Aggregate probes-per-second the service may have running at once; a
  /// single spec asking for more is rejected outright.
  double global_pps_budget = 100'000.0;
  /// Worker slots jobs are multiplexed onto.
  int num_workers = 2;
  /// Bounded admission queue: jobs waiting to start (queued, not yet run).
  /// Preempted jobs do not count — they were admitted already.
  int max_queued = 8;
  /// Wall-credit multiplier for the per-job token buckets (see above).
  double rate_multiplier = 0.0;
  /// Bucket capacity, in seconds of the job's (scaled) rate.
  double burst_seconds = 0.25;
  /// Fair-share hysteresis in probes: a running job yields to an
  /// equal-priority peer only when the peer lags by more than this.
  std::uint64_t fair_share_slack = 0;
};

/// What a running job must do at a checkpoint barrier.
enum class BarrierDecision : std::uint8_t {
  kContinue,  ///< keep scanning
  kPreempt,   ///< stop here; the checkpoint will be kept for resumption
  kCancel,    ///< stop here and discard the job
};

struct Submission {
  bool admitted = false;
  std::uint64_t job_id = 0;       ///< assigned even to rejected jobs
  std::string reason;             ///< machine-readable, empty when admitted
  std::string detail;             ///< human-readable elaboration
};

/// Read-only view of one job, for status/list queries and event context.
struct JobView {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::string name;
  int priority = 0;
  double probes_per_second = 0.0;
  std::uint64_t probes = 0;
  std::uint64_t slices = 0;
  bool has_checkpoint = false;
  std::string detail;
};

enum class CancelOutcome : std::uint8_t {
  kNotFound,
  kAlreadyTerminal,
  kCancelled,   ///< was waiting; now terminal
  kSignalled,   ///< running; will stop at its next barrier
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerConfig& config);

  /// Admission control.  Every submission gets a job id; rejected ones are
  /// recorded in the kRejected terminal state so status queries answer.
  Submission submit(const JobSpec& spec, util::Nanos now);

  /// Recovery (DESIGN.md §14): recreates a journaled job at boot.  Must be
  /// called in job-id order before any submit(), because ids are assigned
  /// positionally.  A job is never restored as kRunning — an interrupted
  /// slice re-enters as kPreempted (resume from `checkpoint`) or kQueued
  /// (rerun from scratch; determinism makes the output identical), so the
  /// running-slot counters stay untouched.  Returns the assigned id.
  std::uint64_t restore(const JobSpec& spec, JobState state,
                        std::uint64_t probes, std::uint64_t slices,
                        std::optional<io::ScanCheckpoint> checkpoint,
                        std::string detail, util::Nanos now);

  /// A free worker asks for work; marks the winner running.  nullopt when
  /// nothing is dispatchable.
  std::optional<std::uint64_t> acquire(util::Nanos now);

  /// Moves the job's saved checkpoint out (nullopt = start fresh).  The
  /// caller keeps it alive for the duration of the resumed slice.
  std::optional<io::ScanCheckpoint> take_checkpoint(std::uint64_t job_id);

  /// Decision point at a checkpoint barrier of a running job.
  /// `probes_total` is the scan's cumulative probe count at the barrier;
  /// the delta since the last barrier is charged to the job's budget.
  BarrierDecision on_barrier(std::uint64_t job_id, std::uint64_t probes_total,
                             util::Nanos now);

  // Slice outcomes (the job must be running).
  void release_preempted(std::uint64_t job_id, io::ScanCheckpoint checkpoint);
  void release_completed(std::uint64_t job_id, std::uint64_t probes_total,
                         util::Nanos now);
  void release_failed(std::uint64_t job_id, std::string detail);
  void release_cancelled(std::uint64_t job_id);

  /// Requests cancellation; see CancelOutcome.
  CancelOutcome cancel(std::uint64_t job_id);

  /// Stops admitting and dispatching; running jobs are told to preempt at
  /// their next barrier.
  void drain();
  bool draining() const noexcept { return draining_; }

  /// True when some waiting job could be dispatched right now.
  bool has_dispatchable(util::Nanos now);

  /// True when no job is waiting or running.
  bool idle() const;
  /// True when every job has reached a terminal state.
  bool all_terminal() const;

  std::size_t job_count() const noexcept { return jobs_.size(); }
  int queue_depth() const;
  int running_count() const noexcept { return running_count_; }
  double running_pps() const noexcept { return running_pps_; }

  std::optional<JobView> view(std::uint64_t job_id) const;
  std::vector<JobView> views() const;

 private:
  struct Entry {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;
    util::TokenBucket bucket;
    bool metered = false;
    bool cancel_requested = false;
    std::uint64_t probes = 0;  ///< cumulative, updated at barriers
    std::uint64_t slices = 0;
    std::optional<io::ScanCheckpoint> checkpoint;
    std::string detail;

    Entry(std::uint64_t id_in, JobSpec spec_in, util::TokenBucket bucket_in)
        : id(id_in), spec(std::move(spec_in)), bucket(bucket_in) {}

    FR_HOT bool waiting() const noexcept {
      return state == JobState::kQueued || state == JobState::kPreempted;
    }
    FR_HOT double progress() const noexcept {
      return static_cast<double>(probes) / spec.weight;
    }
  };

  Entry* find(std::uint64_t job_id);
  const Entry* find(std::uint64_t job_id) const;
  static JobView view_of(const Entry& entry);
  void release_running(Entry& entry);

  /// Scheduler tick: index of the best dispatchable waiter, -1 when none.
  /// `yielding` (nullable) is a running job assumed to give up its slot —
  /// its rate is returned to the budget and it never competes.
  FR_HOT int pick_index(util::Nanos now, const Entry* yielding) noexcept;
  /// Budget accounting: does `entry`'s rate fit beside `reserved_pps`, and
  /// is its bucket in credit (when metered)?
  FR_HOT bool dispatchable(Entry& entry, double reserved_pps,
                           util::Nanos now) noexcept;
  FR_HOT static bool wins(const Entry& a, const Entry& b) noexcept;

  SchedulerConfig config_;
  std::vector<Entry> jobs_;  ///< job id i lives at index i - 1
  double running_pps_ = 0.0;
  int running_count_ = 0;
  bool draining_ = false;
};

}  // namespace flashroute::svc
