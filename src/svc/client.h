// frctl's client side of the frd wire protocol (DESIGN.md §12).
//
// A thin synchronous RPC wrapper: every call sends one frame and blocks for
// the reply on the same connection.  connect() retries until its deadline
// so a client racing a booting daemon (the CI smoke does exactly that)
// settles without shell-side sleep loops.  All socket I/O goes through
// svc/socket.h; this layer only assembles and parses wire.h payloads.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "svc/job.h"
#include "svc/scheduler.h"
#include "svc/socket.h"

namespace flashroute::svc {

struct DiffReply {
  bool ok = false;
  std::string error;  ///< set when !ok
  std::uint64_t interfaces_before = 0;
  std::uint64_t interfaces_after = 0;
  std::uint64_t interfaces_appeared = 0;
  std::uint64_t interfaces_vanished = 0;
  std::uint64_t routes_compared = 0;
  std::uint64_t routes_changed_hops = 0;
  std::uint64_t routes_changed_length = 0;
};

struct VerifyReply {
  bool found = false;
  std::uint64_t payload_size = 0;
  std::uint64_t payload_fnv1a = 0;
};

class Client {
 public:
  /// Connects to a daemon socket, retrying for up to `timeout_ms` (the
  /// daemon may still be binding).  nullopt on timeout.
  static std::optional<Client> connect(const std::string& socket_path,
                                       int timeout_ms = 5000);

  /// nullopt on a transport or protocol error (daemon gone).
  std::optional<Submission> submit(const JobSpec& spec);
  std::optional<JobView> status(std::uint64_t job_id);
  std::optional<std::vector<JobView>> list();
  std::optional<CancelOutcome> cancel(std::uint64_t job_id);
  std::optional<DiffReply> diff(std::uint64_t before_id,
                                std::uint64_t after_id);
  std::optional<VerifyReply> verify(std::uint64_t job_id);
  bool shutdown();

  /// Polls status until the job reaches a terminal state.
  std::optional<JobView> wait_job(std::uint64_t job_id, int poll_ms = 20);
  /// Polls list() until every job is terminal; false on transport error.
  bool wait_all(int poll_ms = 20);

 private:
  explicit Client(Connection connection)
      : connection_(std::move(connection)) {}

  /// One request/reply exchange; nullopt when the daemon is gone.
  std::optional<std::string> roundtrip(const std::string& request);

  Connection connection_;
};

}  // namespace flashroute::svc
