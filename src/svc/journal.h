// Write-ahead job journal: the daemon's durable control-plane log
// (DESIGN.md §14).
//
// Every job-state transition the daemon must not forget across a crash is
// appended here *before* the effect becomes externally visible (the reply
// to the client, the terminal event): admitted / rejected / started /
// barrier-reached / completed / cancelled / failed.  On boot the daemon
// replays the journal against the archive and on-disk checkpoints to
// rebuild the scheduler: queued jobs are re-admitted, interrupted jobs
// resume from their last published barrier, and terminal jobs stay
// terminal (no archive payload is ever appended twice).
//
// Record framing mirrors io::JobArchive ("FRSJ") with its own magic:
//
//   "FRWJ"  u32 LE payload size  [payload]  u32 LE payload size (echo)
//
// where the payload is an svc::wire byte sequence (kind, job id, spec,
// reason, detail, counters).  Opening scans the frames in order, decodes
// each payload, and truncates the file at the first damaged or incomplete
// record — the same torn-tail recovery contract as JobArchive, so a crash
// mid-append (or a partial sector write) costs at most the record being
// written, never the file.
//
// Durability is configurable per daemon:
//
//   kNone   buffered stdio only — cheapest; a crash can lose the tail
//   kFlush  fflush after every record — survives process death
//   kFsync  fflush + fdatasync — survives OS/power death
//
// All methods are thread-safe; append serializes under an internal lock.

#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "svc/job.h"
#include "util/annotations.h"
#include "util/sync.h"

namespace flashroute::svc {

/// How hard append() pushes each record toward stable storage.
enum class Durability : std::uint8_t { kNone, kFlush, kFsync };

inline const char* durability_name(Durability d) {
  switch (d) {
    case Durability::kNone:
      return "none";
    case Durability::kFlush:
      return "flush";
    case Durability::kFsync:
      return "fsync";
  }
  return "unknown";
}

/// Parses "none" | "flush" | "fsync" (the --durability= CLI values).
std::optional<Durability> parse_durability(std::string_view name);

/// Journal record kinds, in rough lifecycle order.
enum class JournalKind : std::uint8_t {
  kAdmitted = 1,  ///< job accepted; spec + request key are authoritative
  kRejected = 2,  ///< admission refused; reason/detail carried for replay
  kStarted = 3,   ///< dispatched to a worker (appended once per slice)
  kBarrier = 4,   ///< checkpoint barrier published (checkpoint file on disk)
  kCompleted = 5, ///< archive payload appended (archive is authoritative)
  kCancelled = 6,
  kFailed = 7,
};

inline const char* journal_kind_name(JournalKind kind) {
  switch (kind) {
    case JournalKind::kAdmitted:
      return "admitted";
    case JournalKind::kRejected:
      return "rejected";
    case JournalKind::kStarted:
      return "started";
    case JournalKind::kBarrier:
      return "barrier";
    case JournalKind::kCompleted:
      return "completed";
    case JournalKind::kCancelled:
      return "cancelled";
    case JournalKind::kFailed:
      return "failed";
  }
  return "unknown";
}

/// One journal entry.  `spec` is meaningful only for kAdmitted/kRejected
/// (the admission records are the durable source of the spec — including
/// the request key — for replay); the rest carry counters and reasons.
struct JournalRecord {
  JournalKind kind = JournalKind::kAdmitted;
  std::uint64_t job_id = 0;
  JobSpec spec;
  std::string reason;
  std::string detail;
  std::uint64_t probes = 0;
  std::uint64_t slices = 0;
};

/// Append-only journal file with torn-tail truncation recovery.
class JobJournal {
 public:
  /// Opens (creating if absent) and recovers `path`.
  JobJournal(std::string path, Durability durability);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// False when the file could not be opened, created, or recovered.
  bool ok() const FR_EXCLUDES(mutex_);

  /// Bytes dropped by truncation recovery at open (0 = clean tail).
  std::uint64_t recovered_bytes_dropped() const FR_EXCLUDES(mutex_);

  /// The records recovered at open, in file order.  Immutable after the
  /// constructor — later append() calls do not extend this snapshot.
  const std::vector<JournalRecord>& records() const noexcept {
    return records_;
  }

  /// Appends one record per the durability mode; false on I/O error.
  bool append(const JournalRecord& record) FR_EXCLUDES(mutex_);

 private:
  mutable util::Mutex mutex_;
  // fr-lint: allow(guarded-member): set in the constructor, read-only after
  std::string path_;
  // fr-lint: allow(guarded-member): set in the constructor, read-only after
  Durability durability_;
  // fr-lint: allow(guarded-member): recovery snapshot, frozen after ctor
  std::vector<JournalRecord> records_;
  std::FILE* file_ FR_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t dropped_ FR_GUARDED_BY(mutex_) = 0;
  bool ok_ FR_GUARDED_BY(mutex_) = false;
};

}  // namespace flashroute::svc
