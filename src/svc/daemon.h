// frd — the continuous-scanning daemon (DESIGN.md §12).
//
// Threads:
//   * one I/O thread runs a poll(2) loop over the AF_UNIX listener, the
//     connected clients, and a self-pipe; it decodes frames (wire.h),
//     serves control-plane requests under the daemon mutex, and never
//     touches a scan;
//   * `num_workers` worker threads sleep on a condition variable and, when
//     the scheduler has a dispatchable job, run one slice of it
//     (job_runner.h), consulting the scheduler at every checkpoint barrier.
//
// The scheduler itself is unsynchronized; every access happens under
// `mutex_`.  Scan slices run outside the lock — a barrier decision is the
// only moment a running scan synchronizes with the control plane.
//
// Completed jobs append their FRSC payload to a shared io::JobArchive;
// diff queries load two jobs' snapshots from it and run
// analysis::diff_snapshots.  Every lifecycle transition is emitted to the
// JSONL job-event stream (event_log.h) and mirrored in the svc.* metrics
// lanes: lane 0 belongs to the I/O thread (admission events), lane 1+i to
// worker i (execution events) — the PR 3 single-writer discipline.
//
// Shutdown: drain (reject new work, preempt running jobs at their next
// barrier), cancel whatever never got to finish, join the workers, then
// write the "job_summary" line.  A daemon killed between those steps leaves
// a truncated-but-recoverable archive (JobArchive's crash contract).
//
// Crash safety (DESIGN.md §14): with DaemonOptions::journal_path set, every
// admission/dispatch/barrier/terminal transition is journaled
// (svc/journal.h) and every barrier checkpoint is atomically published
// under state_dir, so a crashed daemon restarted on the same paths replays
// the journal, re-admits queued jobs, resumes interrupted jobs from their
// last barrier, and deduplicates retried submits by request key — with the
// recovered archives byte-identical to an uncrashed run.  A journaled
// drain keeps waiting jobs for the next boot instead of cancelling them.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "io/scan_archive.h"
#include "obs/job_metrics.h"
#include "obs/metrics.h"
#include "svc/event_log.h"
#include "svc/job_runner.h"
#include "svc/journal.h"
#include "svc/scheduler.h"
#include "svc/socket.h"
#include "svc/wire.h"
#include "util/annotations.h"
#include "util/clock.h"
#include "util/sync.h"

namespace flashroute::svc {

struct DaemonOptions {
  std::string socket_path = "/tmp/frd.sock";
  std::string archive_path = "frd_archive.bin";
  SchedulerConfig scheduler;
  /// JSONL job-event sink; null = events are counted but not written.
  std::ostream* events = nullptr;
  /// Timestamp supplier for the event stream; null = monotonic nanoseconds
  /// since daemon start.  Tests inject a deterministic clock here.
  JobEventLog::NowFn event_clock;

  /// Write-ahead job journal (DESIGN.md §14).  Empty = journaling off:
  /// the daemon behaves exactly as before (no recovery, no submit dedup,
  /// drain cancels waiting jobs).
  std::string journal_path;
  /// Directory for per-job barrier checkpoints (`job_<id>.frck`); created
  /// if absent.  Required when journal_path is set.
  std::string state_dir;
  /// How hard each journal append pushes toward stable storage.
  Durability durability = Durability::kFlush;
  /// Graceful-drain budget after a shutdown request: once exceeded,
  /// still-running jobs are hard-cancelled at their next barrier (their
  /// last published checkpoint survives for the next boot).  0 = wait
  /// for running slices indefinitely.
  util::Nanos drain_deadline = 0;
};

class Daemon {
 public:
  explicit Daemon(const DaemonOptions& options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket, opens the archive, spawns the threads.  False when
  /// the socket or archive could not be set up.
  [[nodiscard]] bool start();

  /// Blocks until shutdown (a kShutdown frame or request_shutdown())
  /// completes, then writes the job_summary line.
  void wait();

  /// Programmatic equivalent of a kShutdown frame (tests, owner threads).
  void request_shutdown() FR_EXCLUDES(mutex_);

  /// Async-signal-safe shutdown request for SIGTERM/SIGINT handlers: one
  /// relaxed atomic store plus a WakePipe write (both signal-safe).  The
  /// I/O loop notices on its next wakeup and starts the graceful drain,
  /// honoring DaemonOptions::drain_deadline.
  void request_shutdown_async() noexcept;

  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  obs::MetricsSnapshot metrics_snapshot() const {
    return registry_.snapshot();
  }

 private:
  void io_loop() FR_EXCLUDES(mutex_);
  void worker_loop(int worker_index) FR_EXCLUDES(mutex_);
  /// Serves one request frame; returns the reply payload ("" = drop peer).
  /// Handlers lock internally, so the I/O thread must call them unlocked.
  std::string handle_request(std::string_view payload) FR_EXCLUDES(mutex_);
  std::string handle_submit(Reader& reader) FR_EXCLUDES(mutex_);
  std::string handle_status(Reader& reader) FR_EXCLUDES(mutex_);
  std::string handle_list() FR_EXCLUDES(mutex_);
  std::string handle_cancel(Reader& reader) FR_EXCLUDES(mutex_);
  std::string handle_diff(Reader& reader) FR_EXCLUDES(mutex_);
  std::string handle_verify(Reader& reader) FR_EXCLUDES(mutex_);
  /// Cancels jobs that will never run again under drain; true when every
  /// job is terminal and no worker holds one.  A journaled daemon keeps
  /// waiting jobs instead — they are durable and resume on the next boot.
  bool reap_for_shutdown() FR_REQUIRES(mutex_);
  /// Boot-time recovery (DESIGN.md §14): replays the journal against the
  /// archive and on-disk checkpoints, rebuilding scheduler/runners/dedup
  /// state.  Runs in start() before any thread is spawned.
  void recover_from_journal() FR_EXCLUDES(mutex_);
  /// `<state_dir>/job_<id>.frck` — the job's published barrier checkpoint.
  std::string checkpoint_path(std::uint64_t job_id) const;
  util::Nanos now() const noexcept { return clock_.now() - epoch_; }

  // fr-lint: allow(guarded-member): set in the constructor, read-only after
  DaemonOptions options_;
  // fr-lint: allow(guarded-member): stateless monotonic-clock reader
  util::MonotonicClock clock_;
  // fr-lint: allow(guarded-member): written once in start(), pre-thread
  util::Nanos epoch_ = 0;

  // Metrics are the lock-free plane: the registry merges single-writer
  // lanes on snapshot (DESIGN.md §7); ids/lanes are frozen in the ctor.
  // fr-lint: allow(guarded-member): internally synchronized (PR 3 lanes)
  obs::MetricsRegistry registry_;
  // fr-lint: allow(guarded-member): frozen in the constructor
  obs::JobMetricIds ids_;
  // fr-lint: allow(guarded-member): frozen in the constructor
  std::vector<obs::MetricsLane> lanes_;  ///< [0] control, [1+i] worker i

  // fr-lint: allow(guarded-member): set in start(); JobEventLog locks itself
  std::unique_ptr<JobEventLog> events_;
  // fr-lint: allow(guarded-member): set in start(); JobArchive locks itself
  std::unique_ptr<io::JobArchive> archive_;
  // fr-lint: allow(guarded-member): set in start(); JobJournal locks itself
  std::unique_ptr<JobJournal> journal_;
  // fr-lint: allow(guarded-member): I/O-thread-only after start()
  ListenSocket listener_;
  // fr-lint: allow(guarded-member): wake()/drain() are async-signal-safe
  WakePipe wake_;

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  Scheduler scheduler_ FR_GUARDED_BY(mutex_);
  /// runners_[id - 1]; null for rejected jobs.  Grows under mutex_ only.
  std::vector<std::unique_ptr<JobRunner>> runners_ FR_GUARDED_BY(mutex_);
  bool shutdown_requested_ FR_GUARDED_BY(mutex_) = false;
  bool stop_workers_ FR_GUARDED_BY(mutex_) = false;
  /// Idempotent-submit replay: request key → the original submit verdict,
  /// rebuilt from the journal at boot.  std::map for deterministic walks.
  std::map<std::string, Submission> request_keys_ FR_GUARDED_BY(mutex_);
  /// Per-job now() of the last checkpoint-file publish; throttles barrier
  /// publishes to a real-time cadence (the virtual clock outruns the wall
  /// clock, and recovery only ever reads the newest file).
  std::map<std::uint64_t, util::Nanos> checkpoint_published_at_
      FR_GUARDED_BY(mutex_);
  /// Absolute now() at which the graceful drain gives up (0 = unset).
  util::Nanos drain_deadline_at_ FR_GUARDED_BY(mutex_) = 0;
  bool drain_cancelled_ FR_GUARDED_BY(mutex_) = false;

  // fr-atomic: shutdown latch — stored by request_shutdown_async (possibly
  // from a signal handler), consumed by the I/O loop on its next wakeup.
  std::atomic<bool> shutdown_async_{false};

  // fr-lint: allow(guarded-member): joined only by the thread calling wait()
  std::thread io_thread_;
  // fr-lint: allow(guarded-member): joined only by the thread calling wait()
  std::vector<std::thread> workers_;
  // fr-lint: allow(guarded-member): start()/wait() run on the owner thread
  bool started_ = false;
  // fr-lint: allow(guarded-member): wait() runs after every join
  bool summary_written_ = false;
};

}  // namespace flashroute::svc
