// frd — the continuous-scanning daemon (DESIGN.md §12).
//
// Threads:
//   * one I/O thread runs a poll(2) loop over the AF_UNIX listener, the
//     connected clients, and a self-pipe; it decodes frames (wire.h),
//     serves control-plane requests under the daemon mutex, and never
//     touches a scan;
//   * `num_workers` worker threads sleep on a condition variable and, when
//     the scheduler has a dispatchable job, run one slice of it
//     (job_runner.h), consulting the scheduler at every checkpoint barrier.
//
// The scheduler itself is unsynchronized; every access happens under
// `mutex_`.  Scan slices run outside the lock — a barrier decision is the
// only moment a running scan synchronizes with the control plane.
//
// Completed jobs append their FRSC payload to a shared io::JobArchive;
// diff queries load two jobs' snapshots from it and run
// analysis::diff_snapshots.  Every lifecycle transition is emitted to the
// JSONL job-event stream (event_log.h) and mirrored in the svc.* metrics
// lanes: lane 0 belongs to the I/O thread (admission events), lane 1+i to
// worker i (execution events) — the PR 3 single-writer discipline.
//
// Shutdown: drain (reject new work, preempt running jobs at their next
// barrier), cancel whatever never got to finish, join the workers, then
// write the "job_summary" line.  A daemon killed between those steps leaves
// a truncated-but-recoverable archive (JobArchive's crash contract).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "io/scan_archive.h"
#include "obs/job_metrics.h"
#include "obs/metrics.h"
#include "svc/event_log.h"
#include "svc/job_runner.h"
#include "svc/scheduler.h"
#include "svc/socket.h"
#include "svc/wire.h"
#include "util/clock.h"

namespace flashroute::svc {

struct DaemonOptions {
  std::string socket_path = "/tmp/frd.sock";
  std::string archive_path = "frd_archive.bin";
  SchedulerConfig scheduler;
  /// JSONL job-event sink; null = events are counted but not written.
  std::ostream* events = nullptr;
  /// Timestamp supplier for the event stream; null = monotonic nanoseconds
  /// since daemon start.  Tests inject a deterministic clock here.
  JobEventLog::NowFn event_clock;
};

class Daemon {
 public:
  explicit Daemon(const DaemonOptions& options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket, opens the archive, spawns the threads.  False when
  /// the socket or archive could not be set up.
  [[nodiscard]] bool start();

  /// Blocks until shutdown (a kShutdown frame or request_shutdown())
  /// completes, then writes the job_summary line.
  void wait();

  /// Programmatic equivalent of a kShutdown frame (signal handlers, tests).
  void request_shutdown();

  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  obs::MetricsSnapshot metrics_snapshot() const {
    return registry_.snapshot();
  }

 private:
  void io_loop();
  void worker_loop(int worker_index);
  /// Serves one request frame; returns the reply payload ("" = drop peer).
  std::string handle_request(std::string_view payload);
  std::string handle_submit(Reader& reader);
  std::string handle_status(Reader& reader);
  std::string handle_list();
  std::string handle_cancel(Reader& reader);
  std::string handle_diff(Reader& reader);
  std::string handle_verify(Reader& reader);
  /// Cancels jobs that will never run again under drain; true when every
  /// job is terminal and no worker holds one.
  bool reap_for_shutdown();
  util::Nanos now() const noexcept { return clock_.now() - epoch_; }

  DaemonOptions options_;
  util::MonotonicClock clock_;
  util::Nanos epoch_ = 0;

  obs::MetricsRegistry registry_;
  obs::JobMetricIds ids_;
  std::vector<obs::MetricsLane> lanes_;  ///< [0] control, [1+i] worker i

  std::unique_ptr<JobEventLog> events_;
  std::unique_ptr<io::JobArchive> archive_;
  ListenSocket listener_;
  WakePipe wake_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Scheduler scheduler_;
  /// runners_[id - 1]; null for rejected jobs.  Grows under mutex_ only.
  std::vector<std::unique_ptr<JobRunner>> runners_;
  bool shutdown_requested_ = false;
  bool stop_workers_ = false;

  std::thread io_thread_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool summary_written_ = false;
};

}  // namespace flashroute::svc
