#include "svc/scheduler.h"

#include <utility>

namespace flashroute::svc {

namespace {

// Tolerance for the budget comparison: admitting N jobs whose rates sum to
// exactly the global budget must not founder on floating-point dust.
constexpr double kBudgetEpsilon = 1e-6;

util::TokenBucket make_bucket(const JobSpec& spec,
                              const SchedulerConfig& config, util::Nanos now) {
  const double rate = spec.probes_per_second > 0.0 ? spec.probes_per_second
                                                   : 1.0;  // rejected anyway
  const double scaled =
      rate * (config.rate_multiplier > 0.0 ? config.rate_multiplier : 1.0);
  const double burst =
      scaled * (config.burst_seconds > 0.0 ? config.burst_seconds : 0.25);
  return util::TokenBucket(scaled, burst < 1.0 ? 1.0 : burst, now);
}

}  // namespace

Scheduler::Scheduler(const SchedulerConfig& config) : config_(config) {}

Submission Scheduler::submit(const JobSpec& spec, util::Nanos now) {
  Submission submission;
  submission.job_id = jobs_.size() + 1;

  const char* reject = nullptr;
  const char* detail = nullptr;
  if (draining_) {
    reject = kRejectDraining;
    detail = "daemon is shutting down";
  } else if (const char* bad = validate_spec(spec); bad != nullptr) {
    reject = kRejectBadSpec;
    detail = bad;
  } else if (spec.probes_per_second >
             config_.global_pps_budget * (1.0 + kBudgetEpsilon)) {
    reject = kRejectRateExceedsGlobalBudget;
    detail = "spec rate alone exceeds the global pps budget";
  } else if (queue_depth() >= config_.max_queued) {
    reject = kRejectQueueFull;
    detail = "admission queue is full";
  }

  Entry entry(submission.job_id, spec, make_bucket(spec, config_, now));
  entry.metered = config_.rate_multiplier > 0.0;
  if (reject != nullptr) {
    entry.state = JobState::kRejected;
    entry.detail = detail;
    submission.admitted = false;
    submission.reason = reject;
    submission.detail = detail;
  } else {
    entry.state = JobState::kQueued;
    submission.admitted = true;
  }
  jobs_.push_back(std::move(entry));
  return submission;
}

std::uint64_t Scheduler::restore(const JobSpec& spec, JobState state,
                                 std::uint64_t probes, std::uint64_t slices,
                                 std::optional<io::ScanCheckpoint> checkpoint,
                                 std::string detail, util::Nanos now) {
  Entry entry(jobs_.size() + 1, spec, make_bucket(spec, config_, now));
  entry.metered = config_.rate_multiplier > 0.0;
  entry.state = state == JobState::kRunning ? JobState::kQueued : state;
  entry.probes = probes;
  entry.slices = slices;
  entry.checkpoint = std::move(checkpoint);
  entry.detail = std::move(detail);
  jobs_.push_back(std::move(entry));
  return jobs_.back().id;
}

std::optional<std::uint64_t> Scheduler::acquire(util::Nanos now) {
  if (draining_ || running_count_ >= config_.num_workers) return std::nullopt;
  const int index = pick_index(now, nullptr);
  if (index < 0) return std::nullopt;
  Entry& entry = jobs_[static_cast<std::size_t>(index)];
  entry.state = JobState::kRunning;
  entry.slices += 1;
  running_pps_ += entry.spec.probes_per_second;
  running_count_ += 1;
  return entry.id;
}

std::optional<io::ScanCheckpoint> Scheduler::take_checkpoint(
    std::uint64_t job_id) {
  Entry* entry = find(job_id);
  if (entry == nullptr || !entry->checkpoint.has_value()) return std::nullopt;
  std::optional<io::ScanCheckpoint> checkpoint = std::move(entry->checkpoint);
  entry->checkpoint.reset();
  return checkpoint;
}

BarrierDecision Scheduler::on_barrier(std::uint64_t job_id,
                                      std::uint64_t probes_total,
                                      util::Nanos now) {
  Entry* entry = find(job_id);
  if (entry == nullptr || entry->state != JobState::kRunning) {
    return BarrierDecision::kCancel;  // defensive: unknown job must stop
  }
  const std::uint64_t delta =
      probes_total > entry->probes ? probes_total - entry->probes : 0;
  entry->probes = probes_total > entry->probes ? probes_total : entry->probes;
  if (entry->metered && delta > 0) {
    entry->bucket.charge(static_cast<double>(delta), now);
  }

  if (draining_) return BarrierDecision::kPreempt;
  if (entry->cancel_requested) return BarrierDecision::kCancel;

  // Would some waiter win this slot if we yielded it?
  const int index = pick_index(now, entry);
  if (index < 0) {
    return BarrierDecision::kContinue;  // work-conserving even in debt
  }
  if (entry->metered && !entry->bucket.in_credit(now)) {
    return BarrierDecision::kPreempt;  // out of budget and a peer waits
  }
  const Entry& waiter = jobs_[static_cast<std::size_t>(index)];
  if (waiter.spec.priority > entry->spec.priority) {
    return BarrierDecision::kPreempt;
  }
  if (waiter.spec.priority == entry->spec.priority &&
      waiter.progress() +
              static_cast<double>(config_.fair_share_slack) / entry->spec.weight <
          entry->progress()) {
    return BarrierDecision::kPreempt;  // fair-share: let the laggard catch up
  }
  return BarrierDecision::kContinue;
}

void Scheduler::release_running(Entry& entry) {
  running_pps_ -= entry.spec.probes_per_second;
  if (running_pps_ < 0.0) running_pps_ = 0.0;
  running_count_ -= 1;
}

void Scheduler::release_preempted(std::uint64_t job_id,
                                  io::ScanCheckpoint checkpoint) {
  Entry* entry = find(job_id);
  if (entry == nullptr || entry->state != JobState::kRunning) return;
  release_running(*entry);
  entry->state = JobState::kPreempted;
  entry->checkpoint = std::move(checkpoint);
}

void Scheduler::release_completed(std::uint64_t job_id,
                                  std::uint64_t probes_total,
                                  util::Nanos now) {
  Entry* entry = find(job_id);
  if (entry == nullptr || entry->state != JobState::kRunning) return;
  const std::uint64_t delta =
      probes_total > entry->probes ? probes_total - entry->probes : 0;
  entry->probes = probes_total > entry->probes ? probes_total : entry->probes;
  if (entry->metered && delta > 0) {
    entry->bucket.charge(static_cast<double>(delta), now);
  }
  release_running(*entry);
  entry->state = JobState::kCompleted;
}

void Scheduler::release_failed(std::uint64_t job_id, std::string detail) {
  Entry* entry = find(job_id);
  if (entry == nullptr || entry->state != JobState::kRunning) return;
  release_running(*entry);
  entry->state = JobState::kFailed;
  entry->detail = std::move(detail);
}

void Scheduler::release_cancelled(std::uint64_t job_id) {
  Entry* entry = find(job_id);
  if (entry == nullptr || entry->state != JobState::kRunning) return;
  release_running(*entry);
  entry->state = JobState::kCancelled;
  entry->checkpoint.reset();
}

CancelOutcome Scheduler::cancel(std::uint64_t job_id) {
  Entry* entry = find(job_id);
  if (entry == nullptr) return CancelOutcome::kNotFound;
  if (job_state_terminal(entry->state)) return CancelOutcome::kAlreadyTerminal;
  if (entry->state == JobState::kRunning) {
    entry->cancel_requested = true;
    return CancelOutcome::kSignalled;
  }
  // Queued or preempted: cancel immediately, the job holds no worker.
  entry->state = JobState::kCancelled;
  entry->checkpoint.reset();
  return CancelOutcome::kCancelled;
}

void Scheduler::drain() { draining_ = true; }

bool Scheduler::has_dispatchable(util::Nanos now) {
  return !draining_ && running_count_ < config_.num_workers &&
         pick_index(now, nullptr) >= 0;
}

bool Scheduler::idle() const {
  for (const Entry& entry : jobs_) {
    if (!job_state_terminal(entry.state)) return false;
  }
  return true;
}

bool Scheduler::all_terminal() const { return idle(); }

int Scheduler::queue_depth() const {
  int depth = 0;
  for (const Entry& entry : jobs_) {
    if (entry.state == JobState::kQueued) ++depth;
  }
  return depth;
}

std::optional<JobView> Scheduler::view(std::uint64_t job_id) const {
  const Entry* entry = find(job_id);
  if (entry == nullptr) return std::nullopt;
  return view_of(*entry);
}

std::vector<JobView> Scheduler::views() const {
  std::vector<JobView> result;
  result.reserve(jobs_.size());
  for (const Entry& entry : jobs_) result.push_back(view_of(entry));
  return result;
}

Scheduler::Entry* Scheduler::find(std::uint64_t job_id) {
  if (job_id == 0 || job_id > jobs_.size()) return nullptr;
  return &jobs_[static_cast<std::size_t>(job_id - 1)];
}

const Scheduler::Entry* Scheduler::find(std::uint64_t job_id) const {
  if (job_id == 0 || job_id > jobs_.size()) return nullptr;
  return &jobs_[static_cast<std::size_t>(job_id - 1)];
}

JobView Scheduler::view_of(const Entry& entry) {
  JobView view;
  view.id = entry.id;
  view.state = entry.state;
  view.name = entry.spec.name;
  view.priority = entry.spec.priority;
  view.probes_per_second = entry.spec.probes_per_second;
  view.probes = entry.probes;
  view.slices = entry.slices;
  view.has_checkpoint = entry.checkpoint.has_value();
  view.detail = entry.detail;
  return view;
}

FR_HOT int Scheduler::pick_index(util::Nanos now,
                                 const Entry* yielding) noexcept {
  double reserved = running_pps_;
  if (yielding != nullptr) reserved -= yielding->spec.probes_per_second;
  if (reserved < 0.0) reserved = 0.0;
  int best = -1;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    Entry& entry = jobs_[i];
    if (!entry.waiting() || entry.cancel_requested) continue;
    if (&entry == yielding) continue;
    if (!dispatchable(entry, reserved, now)) continue;
    if (best < 0 || wins(entry, jobs_[static_cast<std::size_t>(best)])) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

FR_HOT bool Scheduler::dispatchable(Entry& entry, double reserved_pps,
                                    util::Nanos now) noexcept {
  if (reserved_pps + entry.spec.probes_per_second >
      config_.global_pps_budget * (1.0 + 1e-6)) {
    return false;
  }
  return !entry.metered || entry.bucket.in_credit(now);
}

FR_HOT bool Scheduler::wins(const Entry& a, const Entry& b) noexcept {
  if (a.spec.priority != b.spec.priority) {
    return a.spec.priority > b.spec.priority;
  }
  const double pa = a.progress();
  const double pb = b.progress();
  if (pa != pb) return pa < pb;
  return a.id < b.id;
}

}  // namespace flashroute::svc
