// frd transport: AF_UNIX stream sockets and frame I/O (DESIGN.md §12).
//
// This file and socket.cc are the service's *only* syscall boundary — every
// socket(2)/bind(2)/accept(2)/connect(2)/poll(2)/read(2)/write(2) the
// daemon or client performs lives here, behind RAII wrappers.  The rest of
// src/svc/ is pure logic over byte buffers (wire.h) and therefore
// deterministic and unit-testable; fr-lint enforces the boundary by
// refusing FR_HOT annotations in these two files (hot paths must never sit
// on a syscall).
//
// Framing: each message is [u32 LE payload length][payload], length capped
// at wire.h's kMaxFrame.  All reads and writes loop over partial transfers
// and retry EINTR, so callers see whole frames or a closed connection —
// nothing in between.
//
// Lock discipline (DESIGN.md §13): everything here can block indefinitely
// on a peer, so no caller may hold a capability (any annotated mutex)
// across a call into this boundary — a stalled client must never extend
// into a held daemon or archive lock.  fr-lint's `cap-boundary` rule
// enforces this lexically over every caller; the fd fields below are
// immutable after construction/move and need no guard of their own
// (WakePipe::wake()/drain() are the sanctioned cross-thread entry points,
// both single-syscall and async-signal-safe).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace flashroute::svc {

/// One connected stream socket (daemon side: an accepted client; client
/// side: the connection to the daemon).  Owns the fd.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close();

  /// Reads one whole frame.  false on EOF, error, or an oversize length
  /// prefix (protocol violation) — in every case the connection is dead.
  bool read_frame(std::string& payload);

  /// Writes one whole frame; false when the peer is gone.
  bool write_frame(std::string_view payload);

 private:
  int fd_ = -1;
};

/// Listening AF_UNIX socket bound to a filesystem path.  Unlinks any stale
/// socket file first, and unlinks its own on destruction.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// nullopt on failure (path too long for sockaddr_un, bind error, ...).
  static std::optional<ListenSocket> bind_and_listen(const std::string& path);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  const std::string& path() const noexcept { return path_; }

  /// Accepts one pending client; nullopt on transient failure.
  std::optional<Connection> accept_client();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Connects to a daemon's socket path; nullopt when nobody listens yet.
/// `errno_out` (nullable) receives the failing errno — frctl's retry loop
/// distinguishes transient refusals (daemon restarting: ECONNREFUSED,
/// ECONNRESET, ENOENT) from hard errors.
std::optional<Connection> connect_unix(const std::string& path,
                                       int* errno_out = nullptr);

/// Self-pipe used to wake the daemon's poll loop from other threads
/// (worker completions, shutdown requests).
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  bool valid() const noexcept { return read_fd_ >= 0; }
  int read_fd() const noexcept { return read_fd_; }
  void wake();   ///< async-signal-safe single-byte write
  void drain();  ///< consumes pending wake bytes

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// Blocks until at least one of `fds` is readable or `timeout_ms` elapses
/// (-1 = forever); returns the readable subset.  EINTR returns empty.
std::vector<int> wait_readable(const std::vector<int>& fds, int timeout_ms);

}  // namespace flashroute::svc
