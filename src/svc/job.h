// Scan jobs: the unit of work of the continuous-scanning service
// (DESIGN.md §12).
//
// A JobSpec describes one sim-backed scan — universe, seeds, engine knobs,
// and the scheduling inputs (priority, fair-share weight, rate budget).
// checkpoint_interval doubles as the preemption granularity: the scheduler
// may only stop a job at the deterministic virtual-time checkpoint barriers
// the spec itself defines, which is what makes a preempted-then-resumed
// job's output byte-identical to its uncontended run (the PR 5 equivalence
// contract: the quiesce at every barrier happens whether or not the job is
// preempted there).

#pragma once

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace flashroute::svc {

/// Job lifecycle states.  Legal transitions (mirrored by the JSONL event
/// stream and validated by scripts/check_metrics_schema.py --job-events):
///
///   submitted → queued | rejected
///   queued    → running | cancelled
///   running   → preempted | completed | failed | cancelled
///   preempted → running | cancelled
///
/// rejected / completed / failed / cancelled are terminal.
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kPreempted,
  kCompleted,
  kFailed,
  kCancelled,
  kRejected,
};

inline const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kPreempted:
      return "preempted";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

inline bool job_state_terminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kCancelled || state == JobState::kRejected;
}

// Machine-readable admission-rejection reasons (carried verbatim on the
// wire and in the "rejected" job event).
inline constexpr char kRejectRateExceedsGlobalBudget[] =
    "rate_exceeds_global_budget";
inline constexpr char kRejectQueueFull[] = "queue_full";
inline constexpr char kRejectBadSpec[] = "bad_spec";
inline constexpr char kRejectDraining[] = "draining";

// Machine-readable failure reason set during daemon recovery when a job's
// on-disk checkpoint no longer matches its spec (svc/daemon.cc).
inline constexpr char kFailRecoveryCheckpointMismatch[] =
    "recovery_checkpoint_mismatch";

/// One scan job.  Every field participates in the scan's determinism: two
/// jobs with equal specs produce byte-identical archive payloads no matter
/// how the scheduler slices them.
struct JobSpec {
  std::string name;  ///< client label, echoed in events (not semantic)

  // Universe + seeds.
  int prefix_bits = 8;
  std::uint32_t first_prefix = 0x010000;
  std::uint64_t topology_seed = 1;
  std::uint64_t scan_seed = 7;
  std::uint64_t target_seed = 42;

  // Engine knobs.
  double probes_per_second = 20'000.0;  ///< virtual rate; admission input
  std::uint8_t split_ttl = 16;
  std::uint8_t gap_limit = 5;
  std::uint8_t max_ttl = 32;
  bool preprobe_random = false;  ///< kRandom preprobing (kNone otherwise)
  bool collect_routes = true;
  std::uint8_t max_retransmits = 0;
  bool adaptive_backoff = false;
  util::Nanos min_round_duration = 50 * util::kMillisecond;

  // Scheduling inputs.
  int priority = 0;     ///< higher dispatches first
  double weight = 1.0;  ///< fair-share weight within a priority class
  /// Virtual-time distance between checkpoint barriers — the preemption
  /// granularity.  Must be > 0: a job without barriers cannot be preempted
  /// or resumed, so the service refuses it.
  util::Nanos checkpoint_interval = 100 * util::kMillisecond;

  /// Optional client-supplied idempotency key.  A journaled daemon
  /// deduplicates submits by this key — across restarts — and replays the
  /// original reply, so clients can blindly retry after a crash without
  /// double-admitting.  Empty means "no deduplication".
  std::string request_key;
};

/// Validates a spec for admission; returns nullptr when acceptable, else a
/// short human-readable detail (the wire reason stays kRejectBadSpec).
inline const char* validate_spec(const JobSpec& spec) {
  if (spec.prefix_bits < 1 || spec.prefix_bits > 20) {
    return "prefix_bits out of [1, 20]";
  }
  if (!(spec.probes_per_second > 0.0) ||
      spec.probes_per_second > 1'000'000'000.0) {
    return "probes_per_second out of (0, 1e9]";
  }
  if (!(spec.weight > 0.0)) return "weight must be positive";
  if (spec.checkpoint_interval <= 0) {
    return "checkpoint_interval must be positive (preemption granularity)";
  }
  if (spec.min_round_duration <= 0) {
    return "min_round_duration must be positive";
  }
  if (spec.split_ttl < 1 || spec.split_ttl > spec.max_ttl) {
    return "split_ttl out of [1, max_ttl]";
  }
  if (spec.gap_limit < 1) return "gap_limit must be >= 1";
  if (spec.name.size() > 128) return "name longer than 128 bytes";
  if (spec.request_key.size() > 128) {
    return "request_key longer than 128 bytes";
  }
  return nullptr;
}

}  // namespace flashroute::svc
