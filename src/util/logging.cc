#include "util/logging.h"

#include <atomic>

namespace flashroute::util {

namespace {
// fr-atomic: process-wide log threshold, racy-read-OK relaxed toggle
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() noexcept {
  return g_threshold.load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace flashroute::util
