// Token-bucket rate limiter.
//
// Used in two places:
//  * per-interface ICMP generation limits in the Internet simulator —
//    Ravaioli et al. found most routers cap ICMP replies at <= 500/s, the
//    bound the paper assumes in its overprobing analysis (§4.2.2);
//  * the probing-rate throttle of the real-time (threaded) scan runner.
//
// The bucket is defined in virtual time (util::Nanos), so the same code
// serves both the simulator and the real runner.
//
// A third user, the scan-job scheduler (src/svc/), meters whole probe
// *slices* rather than single events: charge() debits N tokens at once and
// may drive the balance negative (debt), and in_credit() asks whether the
// job has worked off its debt.  try_consume() is unaffected — it still
// requires a full token.

#pragma once

#include <algorithm>
#include <cstdint>

#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::util {

class TokenBucket {
 public:
  /// `rate_per_second` tokens accrue per second up to `burst` capacity.
  /// The bucket starts full at time `start`.
  TokenBucket(double rate_per_second, double burst, Nanos start = 0) noexcept
      : rate_(rate_per_second), burst_(burst), tokens_(burst), last_(start) {}

  /// Attempts to take one token at time `t`; returns false when the bucket
  /// is empty (the event is rate-limited).  `t` must be non-decreasing
  /// across calls.
  [[nodiscard]] FR_HOT bool try_consume(Nanos t) noexcept {
    refill(t);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  /// Tokens currently available at time `t` (also refills).
  double available(Nanos t) noexcept {
    refill(t);
    return tokens_;
  }

  /// Debits `n` tokens at time `t`, allowing the balance to go negative —
  /// the debt model of the svc per-job rate budgets, where a slice's probe
  /// count is only known after the slice ran.
  FR_HOT void charge(double n, Nanos t) noexcept {
    refill(t);
    tokens_ -= n;
  }

  /// True when the balance is non-negative at `t` (any debt worked off).
  [[nodiscard]] FR_HOT bool in_credit(Nanos t) noexcept {
    refill(t);
    return tokens_ >= 0.0;
  }

  double rate() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

  /// Changes the refill rate at time `t` (adaptive backoff).  Tokens
  /// accrued under the old rate are settled first, so the switch is exact:
  /// the bucket behaves as if the rate changed precisely at `t`.
  void set_rate(double rate_per_second, Nanos t) noexcept {
    refill(t);
    rate_ = rate_per_second;
  }

 private:
  FR_HOT void refill(Nanos t) noexcept {
    if (t <= last_) return;
    const double elapsed_s =
        static_cast<double>(t - last_) / static_cast<double>(kSecond);
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
    last_ = t;
  }

  double rate_;
  double burst_;
  double tokens_;
  Nanos last_;
};

}  // namespace flashroute::util
