#include "util/crash_point.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flashroute::util {
namespace detail {

// fr-atomic: armed latch — written by crash_points_reload before worker
// threads exist, read relaxed on every FR_CRASH_POINT hit.
std::atomic<bool> g_crash_points_armed{false};

namespace {
// Armed site name and Nth-hit countdown, written only by
// crash_points_reload (single-threaded: static init or a freshly forked
// child before the daemon's threads exist).
char g_site[128] = {0};
// fr-atomic: countdown — concurrently decremented by racing hits of the
// armed site; exactly one thread observes the transition to zero.
std::atomic<long> g_countdown{0};

struct Registrar {
  Registrar() { crash_points_reload(); }
};
Registrar g_registrar;
}  // namespace
}  // namespace detail

void crash_points_reload() noexcept {
  const char* env = std::getenv("FR_CRASH_POINT");
  if (env == nullptr || env[0] == '\0') {
    detail::g_site[0] = '\0';
    detail::g_countdown.store(0, std::memory_order_relaxed);
    detail::g_crash_points_armed.store(false, std::memory_order_relaxed);
    return;
  }
  long nth = 1;
  std::size_t site_len = std::strlen(env);
  if (const char* colon = std::strrchr(env, ':')) {
    char* end = nullptr;
    const long parsed = std::strtol(colon + 1, &end, 10);
    if (end != colon + 1 && *end == '\0' && parsed > 0) {
      nth = parsed;
      site_len = static_cast<std::size_t>(colon - env);
    }
  }
  if (site_len >= sizeof(detail::g_site)) site_len = sizeof(detail::g_site) - 1;
  std::memcpy(detail::g_site, env, site_len);
  detail::g_site[site_len] = '\0';
  detail::g_countdown.store(nth, std::memory_order_relaxed);
  detail::g_crash_points_armed.store(true, std::memory_order_release);
}

void crash_point_hit(const char* site) noexcept {
  if (std::strcmp(site, detail::g_site) != 0) return;
  if (detail::g_countdown.fetch_sub(1, std::memory_order_relaxed) != 1) return;
  std::fprintf(stderr, "fr: crash point '%s' fired; _Exit(%d)\n", site,
               kCrashExitCode);
  std::_Exit(kCrashExitCode);
}

}  // namespace flashroute::util
