// Deterministic pseudo-random number generation for the FlashRoute
// reproduction.
//
// Everything stochastic in this repository — topology generation, interface
// responsiveness, RTT jitter, permutations, load-balancer hashing — derives
// from a named 64-bit seed through the primitives in this header, so that
// every test and benchmark is reproducible bit-for-bit across runs and
// platforms.  We deliberately avoid <random> distributions, whose outputs
// are implementation-defined.

#pragma once

#include <cstdint>
#include <limits>

#include "util/annotations.h"

namespace flashroute::util {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used as a seed expander and as a cheap stateless mixer.
FR_HOT constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a single value (SplitMix64 finalizer).  Suitable
/// for deriving per-entity values ("what is the jitter of interface i?")
/// without keeping any per-entity RNG state.
FR_HOT constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combines two 64-bit values into one well-mixed value.  Order-sensitive.
FR_HOT constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

FR_HOT constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b,
                                            std::uint64_t c) noexcept {
  return hash_combine(hash_combine(a, b), c);
}

FR_HOT constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b,
                                            std::uint64_t c,
                                            std::uint64_t d) noexcept {
  return hash_combine(hash_combine(a, b), hash_combine(c, d));
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator (Blackman/Vigna).
/// Seeded from a single 64-bit seed via SplitMix64 as its authors recommend.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Lemire's multiply-shift reduction without the rejection step; the bias
  /// is < 2^-40 for every bound used in this project, far below anything our
  /// statistics can observe, and the determinism is what we actually need.
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Deterministic per-entity Bernoulli: true with probability `p`, decided by
/// the mixed hash of `key` under `seed`.  Stateless, so the same entity gives
/// the same answer every time — used for persistent properties such as
/// "is this router interface responsive?".
FR_HOT constexpr bool stable_chance(std::uint64_t seed, std::uint64_t key,
                                    double p) noexcept {
  const double u =
      static_cast<double>(hash_combine(seed, key) >> 11) * 0x1.0p-53;
  return u < p;
}

/// Deterministic per-entity uniform integer in [0, bound).
FR_HOT constexpr std::uint64_t stable_bounded(std::uint64_t seed,
                                              std::uint64_t key,
                                              std::uint64_t bound) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(hash_combine(seed, key)) * bound) >> 64);
}

}  // namespace flashroute::util
