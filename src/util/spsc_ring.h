// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The receiver→engine handoff of the real-time runtimes: the receiver thread
// claims a slot, writes the packet bytes into it, and publishes; the engine
// thread peeks the oldest slot, hands a span over it to the response sink,
// and releases.  No locks, no per-packet allocation — slots are preallocated
// once and reused, which is what keeps the receive hot path allocation-free
// at the paper's 100 Kpps response rates.
//
// Exactly one producer thread and one consumer thread may use an instance
// concurrently (the classic Lamport queue with cached indices): the producer
// owns head_, the consumer owns tail_, and each refreshes its cached copy of
// the other's index only when the ring looks full/empty.  A full ring makes
// try_claim return nullptr — callers drop (and count) the packet, the same
// backpressure a NIC ring imposes.

#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "util/annotations.h"

namespace flashroute::util {

// `Index` is the atomic index type: std::atomic<std::size_t> in production.
// tests/model_spsc_test.cc instantiates it with model::Atomic<std::size_t>
// to run the push/pop protocol under the fr_model interleaving scheduler
// (util/model_sched.h) — same algorithm, every interleaving explored.
template <typename T, typename Index = std::atomic<std::size_t>>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so index wrapping
  /// is a mask, not a division.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t capacity = 2;
    while (capacity < min_capacity) capacity *= 2;
    mask_ = capacity - 1;
    slots_ = std::make_unique<T[]>(capacity);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  // --- Producer side ---------------------------------------------------------

  /// Slot to write the next element into, or nullptr when the ring is full.
  /// The slot stays owned by the producer until publish().
  [[nodiscard]] FR_HOT T* try_claim() noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Makes the slot returned by the last try_claim visible to the consumer.
  FR_HOT void publish() noexcept {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  /// Convenience copy-in push.  Returns false when full.
  [[nodiscard]] FR_HOT bool push(const T& value) noexcept {
    T* slot = try_claim();
    if (slot == nullptr) return false;
    *slot = value;
    publish();
    return true;
  }

  // --- Consumer side ---------------------------------------------------------

  /// Oldest unconsumed element, or nullptr when the ring is empty.  The slot
  /// stays valid until pop().
  [[nodiscard]] FR_HOT T* front() noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return nullptr;
    }
    return &slots_[tail & mask_];
  }

  /// Releases the slot returned by the last front() back to the producer.
  FR_HOT void pop() noexcept {
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

 private:
  // Indices are free-running counts; (head - tail) is the fill level even
  // across wraparound of the unsigned counters.
  alignas(64) Index head_{0};                // fr-atomic: SPSC producer index, release-published
  alignas(64) std::size_t cached_tail_ = 0;  // producer's view of tail_
  alignas(64) Index tail_{0};                // fr-atomic: SPSC consumer index, release-published
  alignas(64) std::size_t cached_head_ = 0;  // consumer's view of head_
  std::size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;
};

}  // namespace flashroute::util
