// Deterministic hashed timing wheel for virtual-time deadlines.
//
// Two engines need per-probe deadlines: the Tracer's retransmission layer
// (re-send a main-phase probe whose response missed its window) and the
// Scamper baseline's per-probe timeouts.  Both schedule deadlines of the
// form `now + constant timeout`, expire them in batches, and need the
// earliest pending deadline to pace their idling.  A std::priority_queue
// serves one engine; this wheel serves both, with a property the heap
// lacks: expiry happens in (deadline, insertion-sequence) order — a total
// order independent of container internals — so virtual-time replays are
// byte-identical across runs, shard decompositions, and resumes.
//
// Layout: 2^slot_bits slots of `tick` nanoseconds each.  An entry parks in
// slot (deadline / tick) mod slots; the cursor advances one tick at a time
// and drains each slot it passes.  Entries whose rotation has not come
// around yet (deadline more than one rotation ahead) stay parked in their
// slot until it does.  Steady state allocates nothing: slot vectors and
// the expiry batch keep their high-water capacity across reuse.
//
// The wheel is externally synchronized (owned per engine, like the DCB
// ring).  expire_due must not be re-entered from its callback; scheduling
// new entries from the callback is fine (retransmission chains), but they
// fire no earlier than the next expire_due call.

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::util {

template <typename Payload>
class TimingWheel {
 public:
  /// `tick` is the slot granularity; one rotation spans tick << slot_bits
  /// of virtual time.  Pick tick so the common timeout sits well inside a
  /// rotation (e.g. timeout / 32 with the default 7 slot bits).
  explicit TimingWheel(Nanos tick, int slot_bits = 7)
      : tick_(tick > 0 ? tick : 1),
        mask_((std::size_t{1} << slot_bits) - 1),
        slots_(std::size_t{1} << slot_bits) {}

  [[nodiscard]] FR_HOT bool empty() const noexcept { return size_ == 0; }
  FR_HOT std::size_t size() const noexcept { return size_; }

  /// Schedules `payload` to expire at `deadline`.  Deadlines at or before
  /// the cursor land in the next expire_due batch.
  FR_HOT void schedule(Nanos deadline, const Payload& payload) {
    const std::int64_t tick_index = std::max(deadline / tick_, cursor_);
    // fr-lint: allow(hot-banned): slot vectors keep their capacity across
    // expiry (shrunk with pop_back, never deallocated), so steady state
    // stops reallocating once each slot has seen its high-water occupancy.
    slots_[static_cast<std::size_t>(tick_index) & mask_].push_back(
        Entry{deadline, seq_++, tick_index, payload});
    ++size_;
  }

  /// Earliest pending deadline, or nullopt when the wheel is empty.
  /// Exact: the first slot within one rotation of the cursor that holds an
  /// in-rotation entry bounds the minimum (later in-rotation slots hold
  /// strictly later ticks); when every pending entry is parked beyond the
  /// horizon, falls back to a full scan.
  [[nodiscard]] FR_HOT std::optional<Nanos> next_deadline() const noexcept {
    if (size_ == 0) return std::nullopt;
    const auto rotation = static_cast<std::int64_t>(mask_ + 1);
    for (std::int64_t t = cursor_; t < cursor_ + rotation; ++t) {
      const auto& slot = slots_[static_cast<std::size_t>(t) & mask_];
      bool found = false;
      Nanos best = 0;
      for (const Entry& entry : slot) {
        if (entry.tick_index == t && (!found || entry.deadline < best)) {
          best = entry.deadline;
          found = true;
        }
      }
      if (found) return best;
    }
    bool found = false;
    Nanos best = 0;
    for (const auto& slot : slots_) {
      for (const Entry& entry : slot) {
        if (!found || entry.deadline < best) {
          best = entry.deadline;
          found = true;
        }
      }
    }
    return found ? std::optional<Nanos>(best) : std::nullopt;
  }

  /// Expires every entry with deadline <= now, invoking fn(payload) in
  /// (deadline, seq) order.  `now` must be non-decreasing across calls.
  template <typename Fn>
  FR_HOT void expire_due(Nanos now, Fn&& fn) {
    const std::int64_t target = now / tick_;
    if (target < cursor_) return;
    if (size_ == 0) {
      cursor_ = target;
      return;
    }
    while (cursor_ <= target) {
      expire_slot(now, fn);
      if (size_ == 0) {
        cursor_ = target;
        return;
      }
      if (cursor_ == target) return;
      ++cursor_;
    }
  }

 private:
  struct Entry {
    Nanos deadline;
    std::uint64_t seq;
    std::int64_t tick_index;  // the slot rotation this entry belongs to
    Payload payload;
  };

  template <typename Fn>
  FR_HOT void expire_slot(Nanos now, Fn&& fn) {
    auto& slot = slots_[static_cast<std::size_t>(cursor_) & mask_];
    if (slot.empty()) return;
    // Partition due entries into the scratch batch first, so the callback
    // may schedule new entries (even into this very slot) without
    // invalidating the iteration.
    batch_.clear();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < slot.size(); ++i) {
      if (slot[i].tick_index == cursor_ && slot[i].deadline <= now) {
        // fr-lint: allow(hot-banned): batch_ keeps its high-water capacity
        // across expiry batches; steady state never reallocates.
        batch_.push_back(slot[i]);
      } else {
        slot[kept] = slot[i];
        ++kept;
      }
    }
    while (slot.size() > kept) slot.pop_back();
    if (batch_.empty()) return;
    size_ -= batch_.size();
    // fr-lint: allow(hot-call): in-place sort of the (small) due batch —
    // no allocation; establishes the deterministic (deadline, seq) order.
    std::sort(batch_.begin(), batch_.end(),
              [](const Entry& a, const Entry& b) {
                return a.deadline != b.deadline ? a.deadline < b.deadline
                                                : a.seq < b.seq;
              });
    for (const Entry& entry : batch_) {
      // fr-lint: allow(hot-call): caller-supplied expiry action; both users
      // (Tracer retransmission, Scamper timeout advance) are hot-path
      // members of their engines.
      fn(entry.payload);
    }
  }

  Nanos tick_;
  std::size_t mask_;
  std::vector<std::vector<Entry>> slots_;
  std::vector<Entry> batch_;  // scratch for the current expiry batch
  std::int64_t cursor_ = 0;   // next tick index to drain
  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace flashroute::util
