// Deterministic hashed timing wheel for virtual-time deadlines.
//
// Two engines need per-probe deadlines: the Tracer's retransmission layer
// (re-send a main-phase probe whose response missed its window) and the
// Scamper baseline's per-probe timeouts.  Both schedule deadlines of the
// form `now + constant timeout`, expire them in batches, and need the
// earliest pending deadline to pace their idling.  A std::priority_queue
// serves one engine; this wheel serves both, with a property the heap
// lacks: expiry happens in (deadline, insertion-sequence) order — a total
// order independent of container internals — so virtual-time replays are
// byte-identical across runs, shard decompositions, and resumes.
//
// Layout: 2^slot_bits slots of `tick` nanoseconds each.  An entry parks in
// slot (deadline / tick) mod slots; the cursor advances one tick at a time
// and drains each slot it passes.  Entries whose rotation has not come
// around yet (deadline more than one rotation ahead) stay parked in their
// slot until it does.  Entries live in one shared node pool threaded into
// intrusive per-slot lists, so steady state allocates nothing: the pool
// reaches the high-water count of concurrently pending entries once, after
// which freed nodes are recycled no matter which slots later deadlines
// happen to hash into (per-slot vectors would re-allocate every time the
// cursor wandered onto a slot it had not warmed yet).
//
// The wheel is externally synchronized (owned per engine, like the DCB
// ring).  expire_due must not be re-entered from its callback; scheduling
// new entries from the callback is fine (retransmission chains), but they
// fire no earlier than the next expire_due call.

#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::util {

template <typename Payload>
class TimingWheel {
 public:
  /// `tick` is the slot granularity; one rotation spans tick << slot_bits
  /// of virtual time.  Pick tick so the common timeout sits well inside a
  /// rotation (e.g. timeout / 32 with the default 7 slot bits).
  explicit TimingWheel(Nanos tick, int slot_bits = 7)
      : tick_(tick > 0 ? tick : 1),
        mask_((std::size_t{1} << slot_bits) - 1),
        heads_(std::size_t{1} << slot_bits, kNil),
        occupied_(((std::size_t{1} << slot_bits) + 63) / 64) {}

  [[nodiscard]] FR_HOT bool empty() const noexcept { return size_ == 0; }
  FR_HOT std::size_t size() const noexcept { return size_; }

  /// Schedules `payload` to expire at `deadline`.  Deadlines at or before
  /// the cursor land in the next expire_due batch.
  FR_HOT void schedule(Nanos deadline, const Payload& payload) {
    const std::int64_t tick_index = std::max(deadline / tick_, cursor_);
    const std::size_t slot = static_cast<std::size_t>(tick_index) & mask_;
    std::uint32_t node;
    if (free_head_ != kNil) {
      node = free_head_;
      free_head_ = pool_[node].next;
      pool_[node] = Entry{deadline, seq_++, tick_index, heads_[slot], payload};
    } else {
      node = static_cast<std::uint32_t>(pool_.size());
      // fr-lint: allow(hot-banned): the pool grows only until it holds the
      // high-water count of concurrently pending entries; after that every
      // schedule recycles a freed node and steady state never reallocates.
      pool_.push_back(Entry{deadline, seq_++, tick_index, heads_[slot], payload});
    }
    heads_[slot] = node;
    occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++size_;
  }

  /// Earliest pending deadline, or nullopt when the wheel is empty.
  /// Exact: the first slot within one rotation of the cursor that holds an
  /// in-rotation entry bounds the minimum (later in-rotation slots hold
  /// strictly later ticks); when every pending entry is parked beyond the
  /// horizon, falls back to a full scan.  Both passes walk the occupancy
  /// bitmap (one bit per slot, maintained by schedule/expire), so a sparse
  /// wheel answers in a handful of word reads instead of touching every
  /// slot vector — this is on the batch-sizing path of the sim runtime,
  /// queried once per batch.
  [[nodiscard]] FR_HOT std::optional<Nanos> next_deadline() const noexcept {
    if (size_ == 0) return std::nullopt;
    const std::size_t num_slots = mask_ + 1;
    const std::size_t start = static_cast<std::size_t>(cursor_) & mask_;
    // In-rotation pass: occupied slots in cursor order (wrapping once).
    for (std::size_t d = 0; d < num_slots;) {
      const std::size_t slot = (start + d) & mask_;
      const std::uint64_t word = occupied_[slot >> 6] >> (slot & 63);
      if (word == 0) {
        d += 64 - (slot & 63);
        continue;
      }
      const auto skip = static_cast<std::size_t>(std::countr_zero(word));
      if (d + skip >= num_slots) break;  // wrapped back into visited slots
      const std::int64_t t = cursor_ + static_cast<std::int64_t>(d + skip);
      bool found = false;
      Nanos best = 0;
      for (std::uint32_t node = heads_[(slot + skip) & mask_]; node != kNil;
           node = pool_[node].next) {
        const Entry& entry = pool_[node];
        if (entry.tick_index == t && (!found || entry.deadline < best)) {
          best = entry.deadline;
          found = true;
        }
      }
      if (found) return best;
      d += skip + 1;
    }
    // Beyond-horizon fallback: global minimum over occupied slots.
    bool found = false;
    Nanos best = 0;
    for (std::size_t w = 0; w < occupied_.size(); ++w) {
      std::uint64_t word = occupied_[w];
      while (word != 0) {
        const auto bit = static_cast<std::size_t>(std::countr_zero(word));
        word &= word - 1;
        for (std::uint32_t node = heads_[(w << 6) + bit]; node != kNil;
             node = pool_[node].next) {
          const Entry& entry = pool_[node];
          if (!found || entry.deadline < best) {
            best = entry.deadline;
            found = true;
          }
        }
      }
    }
    return found ? std::optional<Nanos>(best) : std::nullopt;
  }

  /// Expires every entry with deadline <= now, invoking fn(payload) in
  /// (deadline, seq) order.  `now` must be non-decreasing across calls.
  template <typename Fn>
  FR_HOT void expire_due(Nanos now, Fn&& fn) {
    const std::int64_t target = now / tick_;
    if (target < cursor_) return;
    if (size_ == 0) {
      cursor_ = target;
      return;
    }
    while (cursor_ <= target) {
      expire_slot(now, fn);
      if (size_ == 0) {
        cursor_ = target;
        return;
      }
      if (cursor_ == target) return;
      ++cursor_;
    }
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Entry {
    Nanos deadline;
    std::uint64_t seq;
    std::int64_t tick_index;  // the slot rotation this entry belongs to
    std::uint32_t next;       // next node in the slot list or the free list
    Payload payload;
  };

  template <typename Fn>
  FR_HOT void expire_slot(Nanos now, Fn&& fn) {
    const std::size_t index = static_cast<std::size_t>(cursor_) & mask_;
    if (heads_[index] == kNil) {
      occupied_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
      return;
    }
    // Unlink due entries into the scratch batch first, so the callback may
    // schedule new entries (even into this very slot) without invalidating
    // the iteration.
    batch_.clear();
    std::uint32_t* link = &heads_[index];
    std::uint32_t node = heads_[index];
    while (node != kNil) {
      Entry& entry = pool_[node];
      const std::uint32_t next = entry.next;
      if (entry.tick_index == cursor_ && entry.deadline <= now) {
        // fr-lint: allow(hot-banned): batch_ keeps its high-water capacity
        // across expiry batches; steady state never reallocates.
        batch_.push_back(entry);
        *link = next;
        entry.next = free_head_;
        free_head_ = node;
      } else {
        link = &entry.next;
      }
      node = next;
    }
    if (heads_[index] == kNil) {
      occupied_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
    }
    if (batch_.empty()) return;
    size_ -= batch_.size();
    // fr-lint: allow(hot-call): in-place sort of the (small) due batch —
    // no allocation; establishes the deterministic (deadline, seq) order.
    std::sort(batch_.begin(), batch_.end(),
              [](const Entry& a, const Entry& b) {
                return a.deadline != b.deadline ? a.deadline < b.deadline
                                                : a.seq < b.seq;
              });
    for (const Entry& entry : batch_) {
      // fr-lint: allow(hot-call): caller-supplied expiry action; both users
      // (Tracer retransmission, Scamper timeout advance) are hot-path
      // members of their engines.
      fn(entry.payload);
    }
  }

  Nanos tick_;
  std::size_t mask_;
  std::vector<Entry> pool_;             // shared node storage, recycled
  std::vector<std::uint32_t> heads_;    // per-slot intrusive list head
  std::vector<std::uint64_t> occupied_;  // bit per slot: list non-empty
  std::vector<Entry> batch_;  // scratch for the current expiry batch
  std::uint32_t free_head_ = kNil;
  std::int64_t cursor_ = 0;   // next tick index to drain
  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace flashroute::util
