#include "util/stats.h"

#include <cmath>
#include <cstdio>

namespace flashroute::util {

void Histogram::add(std::int64_t key, std::uint64_t count) {
  bins_[key] += count;
  total_ += count;
}

std::uint64_t Histogram::count(std::int64_t key) const {
  const auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

double Histogram::pdf(std::int64_t key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

double Histogram::cdf(std::int64_t key) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (const auto& [k, c] : bins_) {
    if (k > key) break;
    acc += c;
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::int64_t Histogram::quantile(double q) const {
  std::uint64_t acc = 0;
  const auto threshold = static_cast<double>(total_) * q;
  std::int64_t last = 0;
  for (const auto& [k, c] : bins_) {
    acc += c;
    last = k;
    if (static_cast<double>(acc) >= threshold) return k;
  }
  return last;
}

double jaccard(const std::unordered_set<std::uint32_t>& a,
               const std::unordered_set<std::uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  std::size_t intersection = 0;
  for (const auto v : small) {
    if (large.contains(v)) ++intersection;
  }
  const std::size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

std::string format_duration(Nanos ns) {
  if (ns < 0) ns = 0;
  const auto centis = (ns / 10'000'000) % 100;
  const auto total_seconds = ns / kSecond;
  const auto seconds = total_seconds % 60;
  const auto minutes = (total_seconds / 60) % 60;
  const auto hours = total_seconds / 3600;
  char buf[64];
  if (hours > 0) {
    std::snprintf(buf, sizeof buf, "%lld:%02lld:%02lld.%02lld",
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes),
                  static_cast<long long>(seconds),
                  static_cast<long long>(centis));
  } else {
    std::snprintf(buf, sizeof buf, "%lld:%02lld.%02lld",
                  static_cast<long long>(minutes),
                  static_cast<long long>(seconds),
                  static_cast<long long>(centis));
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_count(std::int64_t n) {
  if (n < 0) return "-" + format_count(static_cast<std::uint64_t>(-n));
  return format_count(static_cast<std::uint64_t>(n));
}

std::string format_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace flashroute::util
