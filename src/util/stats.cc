#include "util/stats.h"

#include <cmath>
#include <cstdio>

namespace flashroute::util {

namespace stats_detail {

std::uint64_t quantile_threshold(std::uint64_t total, double q) noexcept {
  if (total == 0) return 0;
  if (q <= 0.0) return 0;
  if (q >= 1.0) return total;
  // Two precision traps meet here.  (1) The walk must compare the
  // cumulative count against the threshold as *integers*: the old code
  // compared double(acc) >= double(total)*q, and past 2^53 double(acc)
  // rounds — double(2^54 - 1) == 2^54, so quantile(1.0) could return a bin
  // BEFORE the last sample.  (2) q itself is a double: 0.01 is really
  // 0.010000000000000000208…, so a naive high-precision ceil(100 * q)
  // yields 2 where the caller plainly meant 1.  So: compute q * total in
  // long double (64-bit mantissa on x86 — total converts exactly), snap to
  // the nearest integer when within a few double ulps (absorbing q's
  // representation error), and only then take the ceiling.
  const long double t =
      static_cast<long double>(total) * static_cast<long double>(q);
  const long double nearest = std::round(t);
  const long double tolerance = t * 4.44e-16L;  // ~4 ulps of a double
  const long double exact =
      std::abs(t - nearest) <= tolerance ? nearest : std::ceil(t);
  if (exact >= static_cast<long double>(total)) return total;
  if (exact <= 0.0L) return 0;
  return static_cast<std::uint64_t>(exact);
}

}  // namespace stats_detail

void Histogram::add(std::int64_t key, std::uint64_t count) {
  bins_[key] += count;
  total_ += count;
}

std::uint64_t Histogram::count(std::int64_t key) const {
  const auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

double Histogram::pdf(std::int64_t key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

double Histogram::cdf(std::int64_t key) const {
  auto it = bins_.begin();
  return stats_detail::cdf_walk(
      [&](std::int64_t& k, std::uint64_t& c) {
        if (it == bins_.end()) return false;
        k = it->first;
        c = it->second;
        ++it;
        return true;
      },
      total_, key);
}

std::int64_t Histogram::quantile(double q) const {
  auto it = bins_.begin();
  return stats_detail::quantile_walk(
      [&](std::int64_t& k, std::uint64_t& c) {
        if (it == bins_.end()) return false;
        k = it->first;
        c = it->second;
        ++it;
        return true;
      },
      total_, q);
}

double Log2Histogram::cdf(std::uint64_t value) const noexcept {
  int b = 0;
  return stats_detail::cdf_walk(
      [&](std::int64_t& k, std::uint64_t& c) {
        if (b >= kBuckets) return false;
        k = b;
        c = buckets_[static_cast<std::size_t>(b)];
        ++b;
        return true;
      },
      total_, bucket_of(value));
}

int Log2Histogram::quantile_bucket(double q) const noexcept {
  int b = 0;
  return static_cast<int>(stats_detail::quantile_walk(
      [&](std::int64_t& k, std::uint64_t& c) {
        if (b >= kBuckets) return false;
        k = b;
        c = buckets_[static_cast<std::size_t>(b)];
        ++b;
        return true;
      },
      total_, q));
}

double jaccard(const std::unordered_set<std::uint32_t>& a,
               const std::unordered_set<std::uint32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  std::size_t intersection = 0;
  for (const auto v : small) {
    if (large.contains(v)) ++intersection;
  }
  const std::size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

std::string format_duration(Nanos ns) {
  if (ns < 0) ns = 0;
  const auto centis = (ns / 10'000'000) % 100;
  const auto total_seconds = ns / kSecond;
  const auto seconds = total_seconds % 60;
  const auto minutes = (total_seconds / 60) % 60;
  const auto hours = total_seconds / 3600;
  char buf[64];
  if (hours > 0) {
    std::snprintf(buf, sizeof buf, "%lld:%02lld:%02lld.%02lld",
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes),
                  static_cast<long long>(seconds),
                  static_cast<long long>(centis));
  } else {
    std::snprintf(buf, sizeof buf, "%lld:%02lld.%02lld",
                  static_cast<long long>(minutes),
                  static_cast<long long>(seconds),
                  static_cast<long long>(centis));
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string format_count(std::int64_t n) {
  // Negate in unsigned space: -INT64_MIN overflows as a signed expression.
  if (n < 0) return "-" + format_count(std::uint64_t{0} - static_cast<std::uint64_t>(n));
  return format_count(static_cast<std::uint64_t>(n));
}

std::string format_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace flashroute::util
