// Keyed random permutation over an arbitrary finite domain.
//
// Both FlashRoute and Yarrp need to visit a huge set of probing targets in a
// pseudo-random order without materializing the shuffled sequence:
//
//  * FlashRoute shuffles all /24 prefixes once, to thread its destination
//    control blocks (DCBs) into a circular list in random order (§3.4);
//  * Yarrp walks a random permutation of every (prefix, TTL) pair on the fly,
//    the ZMap-inspired technique that keeps it stateless (§2).
//
// We implement the standard cycle-walking Feistel construction: a balanced
// Feistel network over the smallest even-bit-width domain covering N, applied
// repeatedly until the image lands inside [0, N).  This yields a bijection on
// [0, N) for any N, computable point-wise in O(1) expected time (< 4 Feistel
// applications on average), with no per-element state.

#pragma once

#include <cstdint>

#include "util/rng.h"

namespace flashroute::util {

class RandomPermutation {
 public:
  /// Builds the identity-free keyed bijection on [0, domain_size).
  /// domain_size == 0 yields an empty permutation (operator() must not be
  /// called); domain_size == 1 is the identity.
  RandomPermutation(std::uint64_t domain_size, std::uint64_t seed) noexcept;

  /// Maps index i in [0, size()) to its position in the shuffled order.
  /// A bijection: distinct inputs give distinct outputs.
  std::uint64_t operator()(std::uint64_t i) const noexcept;

  std::uint64_t size() const noexcept { return domain_size_; }

 private:
  static constexpr int kRounds = 4;

  std::uint64_t feistel(std::uint64_t x) const noexcept;

  std::uint64_t domain_size_;
  std::uint64_t half_bits_;   // each Feistel half is this many bits
  std::uint64_t half_mask_;   // (1 << half_bits_) - 1
  std::uint64_t round_keys_[kRounds];
};

}  // namespace flashroute::util
