// fr_model: a deterministic interleaving-exploration harness for litmus
// tests (DESIGN.md §13).
//
// The pieces:
//   * model::Sched   — a cooperative scheduler.  Test threads run one
//     *model operation* (a load, store, or RMW on a model::Atomic /
//     model::Var) per scheduling step; between steps every thread is
//     parked, so an execution is a sequence of deterministic choices.
//   * model::Explorer — bounded DFS over those choices: it re-executes the
//     test body under every reachable schedule (CHESS-style stateless
//     exploration) and reports the first schedule whose post-execution
//     check fails, as a replayable schedule string like "r0.r1.c0:2.r1".
//   * model::Atomic<T> / model::Var<T> — drop-in stand-ins for
//     std::atomic<T> / plain T whose operations are scheduling points.
//
// Weak memory: stores are not applied to shared memory immediately.  A
// relaxed (or plain Var) store sits in the owning thread's store buffer
// and becomes globally visible at a separately-scheduled *commit* step
// ("c<thread>:<location>"), subject to per-location FIFO coherence —
// commits to different locations may reorder (PSO), which is exactly the
// reordering a missing release fence permits.  A release store commits
// only once it is the oldest entry in its thread's buffer (everything
// program-order-earlier is visible first).  RMWs and seq_cst accesses
// flush the buffer and act on shared memory directly.  Loads see the
// thread's own newest pending store, else shared memory; load reordering
// is not modeled.
//
// Scope and limits: threads must be bounded (no spin-until-signal loops —
// express backoff as bounded retries), model values are integers of at
// most 8 bytes, and model objects must be constructed during Execution
// setup (not from running threads), so location ids are identical across
// schedules and replays.  One Explorer runs at a time per process.
//
// This is test infrastructure: nothing here is hot-path code, and the
// scheduler itself uses the annotated util::Mutex/CondVar primitives.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/annotations.h"
#include "util/sync.h"

namespace flashroute::util::model {

class Sched;

/// The scheduler of the currently running execution (one at a time).
inline Sched*& active_sched() {
  static Sched* current = nullptr;
  return current;
}

/// Model thread index of the calling thread; -1 outside model threads
/// (setup, post-check, and the explorer itself).
inline int& thread_index() {
  static thread_local int index = -1;
  return index;
}

/// Cooperative scheduler and store-buffer memory model.  Test threads call
/// the op_* entry points (via model::Atomic / model::Var); the Explorer
/// calls parked_choices()/apply() to drive one execution.
class Sched {
 public:
  /// One scheduling decision: run one op of a thread ("r2"), or commit a
  /// thread's oldest pending store to one location ("c2:5").
  struct Choice {
    bool commit = false;
    int thread = 0;
    int location = 0;

    bool operator==(const Choice& other) const {
      return commit == other.commit && thread == other.thread &&
             (!commit || location == other.location);
    }
  };

  Sched() = default;
  Sched(const Sched&) = delete;
  Sched& operator=(const Sched&) = delete;

  // --- model-object side (via Atomic/Var) --------------------------------

  /// Registers a shared location with its initial value.  Only legal from
  /// setup context: ids must not depend on the schedule.
  int register_location(std::uint64_t initial) {
    if (thread_index() >= 0) {
      throw std::logic_error(
          "fr_model: model objects must be constructed during Execution "
          "setup, not from running model threads");
    }
    const util::MutexLock lock(mu_);
    memory_.push_back(initial);
    return static_cast<int>(memory_.size()) - 1;
  }

  std::uint64_t op_load(int location, std::memory_order /*order*/) {
    gate();
    const util::MutexLock lock(mu_);
    const int self = thread_index();
    if (self >= 0) {
      const auto& buffer = threads_[self].buffer;
      for (auto it = buffer.rbegin(); it != buffer.rend(); ++it) {
        if (it->location == location) return it->value;  // own newest store
      }
    }
    return memory_[static_cast<std::size_t>(location)];
  }

  void op_store(int location, std::uint64_t value, std::memory_order order) {
    gate();
    const util::MutexLock lock(mu_);
    const int self = thread_index();
    if (self < 0) {
      memory_[static_cast<std::size_t>(location)] = value;
      return;
    }
    if (order == std::memory_order_seq_cst) {
      flush_locked(self);
      memory_[static_cast<std::size_t>(location)] = value;
      return;
    }
    threads_[self].buffer.push_back(
        {location, value, order == std::memory_order_release});
  }

  /// Atomic read-modify-write: flushes the calling thread's buffer (RMWs
  /// synchronize), applies `update` to shared memory, returns the old
  /// value.
  std::uint64_t op_rmw(
      int location,
      const std::function<std::uint64_t(std::uint64_t)>& update) {
    gate();
    const util::MutexLock lock(mu_);
    const int self = thread_index();
    if (self >= 0) flush_locked(self);
    const std::uint64_t old = memory_[static_cast<std::size_t>(location)];
    memory_[static_cast<std::size_t>(location)] = update(old);
    return old;
  }

  // --- explorer side ------------------------------------------------------

  /// Sizes the thread table; called after setup, before threads spawn.
  void start(int num_threads) {
    const util::MutexLock lock(mu_);
    threads_.assign(static_cast<std::size_t>(num_threads), ThreadState{});
  }

  /// Called by the thread wrapper when its body returns.
  void thread_done(int thread) {
    const util::MutexLock lock(mu_);
    threads_[static_cast<std::size_t>(thread)].done = true;
    cv_.notify_all();
  }

  /// Waits until every live thread is parked at a gate, then returns the
  /// full choice set.  Empty means the execution is complete (all threads
  /// done, all buffers drained).
  std::vector<Choice> parked_choices() {
    const util::MutexLock lock(mu_);
    while (!all_parked_locked()) cv_.wait(mu_);
    std::vector<Choice> choices;
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      if (!threads_[t].done) {
        choices.push_back({false, static_cast<int>(t), 0});
      }
    }
    for (std::size_t t = 0; t < threads_.size(); ++t) {
      commit_choices_locked(static_cast<int>(t), choices);
    }
    return choices;
  }

  void apply(const Choice& choice) {
    const util::MutexLock lock(mu_);
    if (choice.commit) {
      commit_locked(choice.thread, choice.location);
      return;
    }
    auto& state = threads_[static_cast<std::size_t>(choice.thread)];
    const std::uint64_t parks_before = state.parks;
    granted_ = choice.thread;
    cv_.notify_all();
    // Wait for the thread to run one op and park again (or finish).  The
    // parks counter distinguishes the *next* park from the current one.
    while (threads_[static_cast<std::size_t>(choice.thread)].parks ==
               parks_before &&
           !threads_[static_cast<std::size_t>(choice.thread)].done) {
      cv_.wait(mu_);
    }
  }

 private:
  struct PendingStore {
    int location;
    std::uint64_t value;
    bool release;
  };

  struct ThreadState {
    bool at_gate = false;
    bool done = false;
    std::uint64_t parks = 0;
    std::vector<PendingStore> buffer;
  };

  /// Every model op starts here: park, wait for the scheduler's grant.
  void gate() {
    const int self = thread_index();
    if (self < 0) return;  // setup / post-check context is unscheduled
    const util::MutexLock lock(mu_);
    auto& state = threads_[static_cast<std::size_t>(self)];
    state.at_gate = true;
    ++state.parks;
    cv_.notify_all();
    while (granted_ != self) cv_.wait(mu_);
    granted_ = -1;
    state.at_gate = false;
  }

  bool all_parked_locked() const FR_REQUIRES(mu_) {
    for (const ThreadState& state : threads_) {
      if (!state.done && !state.at_gate) return false;
    }
    return true;
  }

  /// A pending store may commit iff no program-order-earlier store to the
  /// same location is pending (per-location FIFO), and — when it is a
  /// release store — nothing at all is pending before it.
  void commit_choices_locked(int thread, std::vector<Choice>& out) const
      FR_REQUIRES(mu_) {
    const auto& buffer = threads_[static_cast<std::size_t>(thread)].buffer;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      bool location_pending_earlier = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (buffer[j].location == buffer[i].location) {
          location_pending_earlier = true;
          break;
        }
      }
      if (location_pending_earlier) continue;
      if (buffer[i].release && i != 0) continue;
      out.push_back({true, thread, buffer[i].location});
    }
  }

  void commit_locked(int thread, int location) FR_REQUIRES(mu_) {
    auto& buffer = threads_[static_cast<std::size_t>(thread)].buffer;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (buffer[i].location == location) {
        memory_[static_cast<std::size_t>(location)] = buffer[i].value;
        buffer.erase(buffer.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    throw std::logic_error("fr_model: commit of a location with no "
                           "pending store (corrupt schedule?)");
  }

  void flush_locked(int self) FR_REQUIRES(mu_) {
    auto& buffer = threads_[static_cast<std::size_t>(self)].buffer;
    for (const PendingStore& store : buffer) {
      memory_[static_cast<std::size_t>(store.location)] = store.value;
    }
    buffer.clear();
  }

  mutable util::Mutex mu_;
  util::CondVar cv_;
  int granted_ FR_GUARDED_BY(mu_) = -1;
  std::vector<ThreadState> threads_ FR_GUARDED_BY(mu_);
  std::vector<std::uint64_t> memory_ FR_GUARDED_BY(mu_);
};

/// Renders a trace as a replayable schedule string: "r0.r1.c0:2.r1".
inline std::string format_schedule(const std::vector<Sched::Choice>& trace) {
  std::string out;
  for (const Sched::Choice& choice : trace) {
    if (!out.empty()) out += '.';
    if (choice.commit) {
      out += 'c';
      out += std::to_string(choice.thread);
      out += ':';
      out += std::to_string(choice.location);
    } else {
      out += 'r';
      out += std::to_string(choice.thread);
    }
  }
  return out;
}

inline std::vector<Sched::Choice> parse_schedule(const std::string& text) {
  std::vector<Sched::Choice> choices;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('.', pos);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(pos, end - pos);
    if (token.size() < 2 || (token[0] != 'r' && token[0] != 'c')) {
      throw std::invalid_argument("fr_model: bad schedule token: " + token);
    }
    Sched::Choice choice;
    if (token[0] == 'r') {
      choice.commit = false;
      choice.thread = std::stoi(token.substr(1));
    } else {
      const std::size_t colon = token.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("fr_model: bad commit token: " + token);
      }
      choice.commit = true;
      choice.thread = std::stoi(token.substr(1, colon - 1));
      choice.location = std::stoi(token.substr(colon + 1));
    }
    choices.push_back(choice);
    pos = end + 1;
  }
  return choices;
}

/// One test instance: the thread bodies plus the invariant checked after
/// the execution completes (all threads joined, all stores committed).
struct Execution {
  std::vector<std::function<void()>> threads;
  std::function<bool()> check;
};

struct Result {
  std::int64_t executions = 0;
  bool failed = false;     ///< some schedule's check returned false
  bool exhausted = false;  ///< hit max_executions before full coverage
  std::string schedule;    ///< the failing schedule (replayable)
};

/// Bounded-DFS explorer: enumerates every schedule of the Execution that
/// `make` builds (fresh state per run) and stops at the first failure.
class Explorer {
 public:
  struct Options {
    std::int64_t max_executions = std::int64_t{1} << 20;
  };

  Explorer() = default;
  explicit Explorer(Options options) : options_(options) {}

  Result explore(const std::function<Execution()>& make) {
    Result result;
    std::vector<std::vector<Sched::Choice>> pending;
    pending.push_back({});
    while (!pending.empty()) {
      if (result.executions >= options_.max_executions) {
        result.exhausted = true;
        break;
      }
      const std::vector<Sched::Choice> prefix = std::move(pending.back());
      pending.pop_back();
      std::vector<Sched::Choice> trace;
      const bool ok = run_one(make, prefix, trace, &pending);
      ++result.executions;
      if (!ok) {
        result.failed = true;
        result.schedule = format_schedule(trace);
        break;
      }
    }
    return result;
  }

  /// Re-runs one exact schedule (e.g. one printed by a failing test).
  Result replay(const std::string& schedule,
                const std::function<Execution()>& make) {
    Result result;
    std::vector<Sched::Choice> trace;
    const bool ok = run_one(make, parse_schedule(schedule), trace, nullptr);
    result.executions = 1;
    result.failed = !ok;
    result.schedule = format_schedule(trace);
    return result;
  }

 private:
  bool run_one(const std::function<Execution()>& make,
               const std::vector<Sched::Choice>& prefix,
               std::vector<Sched::Choice>& trace,
               std::vector<std::vector<Sched::Choice>>* pending) {
    Sched sched;
    active_sched() = &sched;
    Execution execution = make();  // registers locations, resets state
    const int num_threads = static_cast<int>(execution.threads.size());
    sched.start(num_threads);
    std::vector<std::thread> workers;
    workers.reserve(execution.threads.size());
    for (int i = 0; i < num_threads; ++i) {
      workers.emplace_back([&execution, &sched, i] {
        thread_index() = i;
        execution.threads[static_cast<std::size_t>(i)]();
        sched.thread_done(i);
      });
    }
    std::size_t step = 0;
    while (true) {
      const std::vector<Sched::Choice> choices = sched.parked_choices();
      if (choices.empty()) break;  // all done, buffers drained
      Sched::Choice choice;
      if (step < prefix.size()) {
        choice = prefix[step];
        if (std::find(choices.begin(), choices.end(), choice) ==
            choices.end()) {
          // Unpark everything so the join below terminates, then report.
          abandon(sched, execution, workers);
          throw std::logic_error(
              "fr_model: schedule prefix diverged at step " +
              std::to_string(step) + " (stale schedule string?)");
        }
      } else {
        choice = choices.front();
        // Branch only while some thread is live: once every thread is
        // done, the remaining commits drain to the same final memory in
        // any order (per-location FIFO), so exploring them adds nothing.
        const bool live = !choices.front().commit;
        if (pending != nullptr && live) {
          for (std::size_t i = 1; i < choices.size(); ++i) {
            std::vector<Sched::Choice> alternative = trace;
            alternative.push_back(choices[i]);
            pending->push_back(std::move(alternative));
          }
        }
      }
      trace.push_back(choice);
      sched.apply(choice);
      ++step;
    }
    for (std::thread& worker : workers) worker.join();
    // The post-check runs unscheduled but may still read model objects
    // (direct memory access), so the scheduler stays active for it.
    const bool ok = !execution.check || execution.check();
    active_sched() = nullptr;
    return ok;
  }

  // Error path: grant every thread until it finishes so join() returns.
  void abandon(Sched& sched, Execution& execution,
               std::vector<std::thread>& workers) {
    for (std::size_t t = 0; t < execution.threads.size(); ++t) {
      // Run each thread to completion, ignoring further choices.
      while (true) {
        const std::vector<Sched::Choice> choices = sched.parked_choices();
        bool ran = false;
        for (const Sched::Choice& choice : choices) {
          if (!choice.commit &&
              choice.thread == static_cast<int>(t)) {
            sched.apply(choice);
            ran = true;
            break;
          }
        }
        if (!ran) break;
      }
    }
    for (std::thread& worker : workers) worker.join();
    active_sched() = nullptr;
  }

  Options options_;
};

/// std::atomic<T> stand-in whose every operation is a scheduling point.
/// Construct during Execution setup only.
template <typename T>
class Atomic {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 8,
                "fr_model models integral values of at most 8 bytes");

 public:
  Atomic(T value = T{})  // NOLINT(google-explicit-constructor)
      : location_(active_sched()->register_location(widen(value))) {}
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    return narrow(active_sched()->op_load(location_, order));
  }
  void store(T value, std::memory_order order = std::memory_order_seq_cst) {
    active_sched()->op_store(location_, widen(value), order);
  }
  T fetch_add(T value, std::memory_order = std::memory_order_seq_cst) {
    return rmw([value](T old) { return static_cast<T>(old + value); });
  }
  T fetch_sub(T value, std::memory_order = std::memory_order_seq_cst) {
    return rmw([value](T old) { return static_cast<T>(old - value); });
  }
  T fetch_or(T value, std::memory_order = std::memory_order_seq_cst) {
    return rmw([value](T old) { return static_cast<T>(old | value); });
  }
  T fetch_and(T value, std::memory_order = std::memory_order_seq_cst) {
    return rmw([value](T old) { return static_cast<T>(old & value); });
  }
  T exchange(T value, std::memory_order = std::memory_order_seq_cst) {
    return rmw([value](T) { return value; });
  }

 private:
  template <typename Fn>
  T rmw(const Fn& update) {
    return narrow(active_sched()->op_rmw(
        location_, [&update](std::uint64_t old) {
          return widen(update(narrow(old)));
        }));
  }
  static std::uint64_t widen(T value) {
    return static_cast<std::uint64_t>(
        static_cast<std::make_unsigned_t<T>>(value));
  }
  static T narrow(std::uint64_t value) {
    return static_cast<T>(
        static_cast<std::make_unsigned_t<T>>(value));
  }

  int location_;
};

/// Plain-variable stand-in: reads and writes are relaxed model accesses
/// (a plain store can reorder exactly like a relaxed atomic one — that is
/// the reordering a missing release fence exposes).
template <typename T>
class Var {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 8,
                "fr_model models integral values of at most 8 bytes");

 public:
  Var(T value = T{})  // NOLINT(google-explicit-constructor)
      : location_(active_sched()->register_location(
            static_cast<std::uint64_t>(
                static_cast<std::make_unsigned_t<T>>(value)))) {}
  Var(const Var& other) : Var(other.get()) {}

  Var& operator=(T value) {
    active_sched()->op_store(
        location_,
        static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(value)),
        std::memory_order_relaxed);
    return *this;
  }
  Var& operator=(const Var& other) {
    if (this != &other) *this = other.get();
    return *this;
  }

  operator T() const { return get(); }  // NOLINT(google-explicit-constructor)

  T get() const {
    return static_cast<T>(static_cast<std::make_unsigned_t<T>>(
        active_sched()->op_load(location_, std::memory_order_relaxed)));
  }

 private:
  int location_;
};

}  // namespace flashroute::util::model
