#include "util/permutation.h"

#include <bit>

namespace flashroute::util {

RandomPermutation::RandomPermutation(std::uint64_t domain_size,
                                     std::uint64_t seed) noexcept
    : domain_size_(domain_size) {
  // Smallest even bit-width 2k with 2^(2k) >= domain_size, k >= 1.
  int bits =
      domain_size <= 2 ? 2 : static_cast<int>(std::bit_width(domain_size - 1));
  if (bits % 2 != 0) ++bits;
  half_bits_ = static_cast<std::uint64_t>(bits) / 2;
  half_mask_ = (std::uint64_t{1} << half_bits_) - 1;
  std::uint64_t s = seed;
  for (auto& key : round_keys_) key = splitmix64(s);
}

std::uint64_t RandomPermutation::feistel(std::uint64_t x) const noexcept {
  std::uint64_t left = x >> half_bits_;
  std::uint64_t right = x & half_mask_;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t f = mix64(right ^ round_keys_[round]) & half_mask_;
    const std::uint64_t next_right = left ^ f;
    left = right;
    right = next_right;
  }
  return (left << half_bits_) | right;
}

std::uint64_t RandomPermutation::operator()(std::uint64_t i) const noexcept {
  // Cycle-walk: the Feistel network permutes [0, 2^(2k)); keep re-applying
  // until we land back inside the target domain.  Because the network is a
  // bijection on the larger power-of-two domain, this is a bijection on
  // [0, domain_size_), and since 2^(2k) < 4 * domain_size_, the expected
  // number of applications is < 4.
  std::uint64_t x = feistel(i);
  while (x >= domain_size_) x = feistel(x);
  return x;
}

}  // namespace flashroute::util
