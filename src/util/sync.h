// Capability-annotated synchronization primitives (DESIGN.md §13).
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// attributes, so code using them is invisible to clang's -Wthread-safety
// analysis.  These thin wrappers restore visibility: `util::Mutex` is an
// annotated capability over std::mutex, `util::MutexLock` is the annotated
// RAII holder (the absl::MutexLock shape: the *constructor* carries the
// FR_ACQUIRE contract, so the analysis trusts it rather than re-deriving
// it from the std::lock_guard instantiation it cannot see), and
// `util::CondVar` wraps std::condition_variable_any with a wait() that
// FR_REQUIRES the mutex — callers must already hold it, exactly the
// std::condition_variable precondition.
//
// Every mutex-owning class in src/svc, src/io and src/sim uses these
// types; the CI thread-safety job compiles the tree with
// `-Wthread-safety -Werror`, making "field touched without its lock" a
// build break, not a TSan roll of the dice.
//
// None of this is hot-path code: the hot path is lock-free by
// construction (DESIGN.md §6) and fr-lint's hot-banned rule keeps mutexes
// out of FR_HOT bodies entirely.

#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace flashroute::util {

/// Annotated capability over std::mutex.  Member bodies forward to the
/// (unannotated) std::mutex, so the analysis sees exactly one capability
/// per lock — the wrapper — and trusts the contracts below.
class FR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FR_ACQUIRE() { mutex_.lock(); }
  void unlock() FR_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() FR_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII holder for a Mutex (the scoped-capability pattern): construction
/// acquires, destruction releases.  Deliberately not a template and not
/// movable — one lock, one scope, no relock/adoption states for the
/// analysis (or a reader) to track.
class FR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FR_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable usable with util::Mutex.  wait() requires the mutex
/// held (it unlocks/relocks internally, inside the std implementation the
/// analysis does not look into); as always with condition variables,
/// re-check the predicate in a loop around each wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) FR_REQUIRES(mutex) {
    // condition_variable_any::wait needs an lvalue BasicLockable; a
    // stack-local view over the wrapped std::mutex keeps the internal
    // unlock/relock pair TSA-silent (it is the condvar's documented
    // protocol, not a capability transfer the caller sees) and shares no
    // state between concurrent waiters.
    MutexRef ref{&mutex.mutex_};
    cv_.wait(ref);
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  struct MutexRef {
    std::mutex* inner;
    void lock() { inner->lock(); }
    void unlock() { inner->unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace flashroute::util
