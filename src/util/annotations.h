// Machine-checked invariant annotations (DESIGN.md §8, §13).
//
// FlashRoute's throughput claims rest on invariants that code review alone
// cannot hold at scale: the probe/response hot path must never allocate,
// throw, take a mutex, or dispatch through a non-devirtualizable interface
// (§3.2, DESIGN.md §6), the telemetry lanes must stay single-writer
// relaxed (DESIGN.md §7), and every mutex-guarded field must only be
// touched with its mutex held (DESIGN.md §13).  The annotations below make
// those invariants visible to `scripts/fr_lint` (and, under clang, to the
// thread-safety analysis and any attribute-aware tooling), which enforces
// them statically on every CI run.
//
// FR_HOT — marks a function as hot-path.  fr-lint requires an FR_HOT
//   function to call only other FR_HOT functions, allowlisted known-pure
//   primitives (memcpy, atomic load/store, ...), or calls carrying an
//   explicit `// fr-lint: allow(<rule>): <reason>` suppression; its body may
//   not contain heap allocation, `throw`, mutexes, blocking I/O, or calls to
//   virtual methods whose implementations are not all `final`.  The
//   discipline is inductive: if every FR_HOT function checks out locally,
//   the whole annotated call graph is transitively clean.
//
// FR_SINGLE_WRITER — marks a class as a single-writer relaxed lane (one
//   writer thread, torn-free relaxed readers — the MetricsLane contract).
//   fr-lint forbids read-modify-write atomics (fetch_add, exchange,
//   compare_exchange) and any non-relaxed memory order inside the class.
//
// `// fr-atomic: <role>` — every raw `std::atomic`/`std::atomic_flag` data
//   member outside an FR_SINGLE_WRITER class must carry this trailing
//   comment naming its synchronization role; fr-lint flags undocumented
//   atomics (rule `atomic-member`).
//
// Thread-safety capabilities (clang -Wthread-safety; Hutchins et al.,
// "C/C++ Thread Safety Analysis").  ANNOTATION REQUIREMENT: every class
// that owns a mutex by value must annotate each of its mutable fields with
// FR_GUARDED_BY(that mutex), an `// fr-atomic: <role>` comment, or an
// explicit `// fr-lint: allow(guarded-member): <reason>` — fr-lint's
// `guarded-member` rule enforces this even where clang is absent, and the
// CI thread-safety job compiles src/ with -Wthread-safety -Werror so the
// annotations are *checked*, not advisory.
//
// FR_CAPABILITY(name) — marks a class as a capability (a mutex in the TSA
//   sense); its acquire/release members carry FR_ACQUIRE/FR_RELEASE.
// FR_SCOPED_CAPABILITY — RAII lock holders (util::MutexLock).
// FR_GUARDED_BY(mu) / FR_PT_GUARDED_BY(mu) — data (or pointee) may only be
//   read or written with `mu` held.
// FR_REQUIRES(mu) — the function may only be called with `mu` already held.
// FR_ACQUIRE(mu) / FR_RELEASE(mu) — the function acquires/releases `mu`.
// FR_TRY_ACQUIRE(result, mu) — acquires `mu` iff it returns `result`.
// FR_EXCLUDES(mu) — the function must NOT be called with `mu` held (it
//   takes the lock itself; calling it locked would self-deadlock).
// FR_NO_THREAD_SAFETY_ANALYSIS — escape hatch; only for documented
//   boundary code (lock implementations themselves).
//
// Under clang the macros expand to thread-safety attributes /
// [[clang::annotate]] so the analysis and the libclang engine see them in
// the AST; under other compilers they expand to nothing.  The fallback
// engine matches the macro tokens in source text, so enforcement does not
// depend on clang.

#pragma once

#if defined(__clang__)
#define FR_HOT [[clang::annotate("fr::hot")]]
#define FR_SINGLE_WRITER [[clang::annotate("fr::single_writer")]]
#define FR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FR_HOT
#define FR_SINGLE_WRITER
#define FR_THREAD_ANNOTATION(x)
#endif

#define FR_CAPABILITY(name) FR_THREAD_ANNOTATION(capability(name))
#define FR_SCOPED_CAPABILITY FR_THREAD_ANNOTATION(scoped_lockable)
#define FR_GUARDED_BY(x) FR_THREAD_ANNOTATION(guarded_by(x))
#define FR_PT_GUARDED_BY(x) FR_THREAD_ANNOTATION(pt_guarded_by(x))
#define FR_REQUIRES(...) \
  FR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FR_ACQUIRE(...) \
  FR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FR_RELEASE(...) \
  FR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FR_TRY_ACQUIRE(...) \
  FR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FR_EXCLUDES(...) FR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FR_NO_THREAD_SAFETY_ANALYSIS \
  FR_THREAD_ANNOTATION(no_thread_safety_analysis)
