// Machine-checked invariant annotations (DESIGN.md §8).
//
// FlashRoute's throughput claims rest on invariants that code review alone
// cannot hold at scale: the probe/response hot path must never allocate,
// throw, take a mutex, or dispatch through a non-devirtualizable interface
// (§3.2, DESIGN.md §6), and the telemetry lanes must stay single-writer
// relaxed (DESIGN.md §7).  The annotations below make those invariants
// visible to `scripts/fr_lint` (and, under clang, to any attribute-aware
// tooling), which enforces them statically on every CI run.
//
// FR_HOT — marks a function as hot-path.  fr-lint requires an FR_HOT
//   function to call only other FR_HOT functions, allowlisted known-pure
//   primitives (memcpy, atomic load/store, ...), or calls carrying an
//   explicit `// fr-lint: allow(<rule>): <reason>` suppression; its body may
//   not contain heap allocation, `throw`, mutexes, blocking I/O, or calls to
//   virtual methods whose implementations are not all `final`.  The
//   discipline is inductive: if every FR_HOT function checks out locally,
//   the whole annotated call graph is transitively clean.
//
// FR_SINGLE_WRITER — marks a class as a single-writer relaxed lane (one
//   writer thread, torn-free relaxed readers — the MetricsLane contract).
//   fr-lint forbids read-modify-write atomics (fetch_add, exchange,
//   compare_exchange) and any non-relaxed memory order inside the class.
//
// `// fr-atomic: <role>` — every raw `std::atomic`/`std::atomic_flag` data
//   member outside an FR_SINGLE_WRITER class must carry this trailing
//   comment naming its synchronization role; fr-lint flags undocumented
//   atomics (rule `atomic-member`).
//
// Under clang the macros expand to [[clang::annotate]] attributes, so the
// libclang engine (and future clang plugins) see them in the AST; under
// other compilers they expand to nothing.  The fallback engine matches the
// macro tokens in source text, so enforcement does not depend on clang.

#pragma once

#if defined(__clang__)
#define FR_HOT [[clang::annotate("fr::hot")]]
#define FR_SINGLE_WRITER [[clang::annotate("fr::single_writer")]]
#else
#define FR_HOT
#define FR_SINGLE_WRITER
#endif
