// Small statistics toolkit used by the analysis modules and benchmarks:
// integer histograms (PDFs/CDFs of hop-distance differences for Figs 3-4),
// Jaccard similarity of interface sets (Fig 8), and the number/duration
// formatting used to print tables in the same shape as the paper.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/clock.h"

namespace flashroute::util {

/// Histogram over signed integer keys with O(log n) insert; exposes the
/// empirical PDF and CDF in key order.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t count = 1);

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t count(std::int64_t key) const;

  /// Fraction of samples with exactly this key (0 when total()==0).
  double pdf(std::int64_t key) const;

  /// Fraction of samples with key <= the argument.
  double cdf(std::int64_t key) const;

  /// All (key, count) pairs in increasing key order.
  const std::map<std::int64_t, std::uint64_t>& bins() const noexcept {
    return bins_;
  }

  /// Smallest key k such that cdf(k) >= q (q in (0, 1]); requires total()>0.
  std::int64_t quantile(double q) const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Jaccard index |a ∩ b| / |a ∪ b|; defined as 1.0 for two empty sets
/// (identical), matching the convention used in the paper's Fig 8.
double jaccard(const std::unordered_set<std::uint32_t>& a,
               const std::unordered_set<std::uint32_t>& b);

/// Formats nanoseconds the way the paper prints scan times:
/// "mm:ss.cc" below an hour, "h:mm:ss.cc" above.
std::string format_duration(Nanos ns);

/// Formats an integer with thousands separators: 97807092 -> "97,807,092".
std::string format_count(std::uint64_t n);
std::string format_count(std::int64_t n);

/// Fixed-point percent: format_percent(0.123456) -> "12.3%".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace flashroute::util
