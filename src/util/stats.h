// Small statistics toolkit used by the analysis modules, the benchmarks and
// the telemetry subsystem: integer histograms (PDFs/CDFs of hop-distance
// differences for Figs 3-4), log2-bucketed histograms (the obs/ metric
// lanes merge into these), Jaccard similarity of interface sets (Fig 8), and
// the number/duration formatting used to print tables in the same shape as
// the paper.
//
// Both histogram flavours share ONE cumulative-walk implementation
// (stats_detail below) for their CDF/quantile queries; the classes differ
// only in how samples are binned (exact signed keys vs log2 buckets).

#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::util {

namespace stats_detail {

/// Cumulative count a quantile walk must reach: the smallest integer
/// >= q * total.  Computed in extended precision (long double carries a
/// 64-bit mantissa on x86) and clamped to [0, total], so totals beyond 2^53
/// — where a plain double threshold mis-rounds — still resolve exactly.
std::uint64_t quantile_threshold(std::uint64_t total, double q) noexcept;

/// The one cumulative walk behind every histogram flavour's quantile():
/// `next(key, count)` yields successive bins in increasing key order
/// (returning false when exhausted); returns the first key whose cumulative
/// count reaches the threshold, or the last key seen.
template <typename NextBin>
std::int64_t quantile_walk(NextBin&& next, std::uint64_t total, double q) {
  const std::uint64_t threshold = quantile_threshold(total, q);
  std::uint64_t acc = 0;
  std::int64_t key = 0;
  std::int64_t last = 0;
  std::uint64_t count = 0;
  while (next(key, count)) {
    acc += count;
    last = key;
    if (acc >= threshold) return key;
  }
  return last;
}

/// Shared CDF walk: fraction of samples with key <= `upto` (0 on empty).
/// Integer accumulation; the single division happens at the end.
template <typename NextBin>
double cdf_walk(NextBin&& next, std::uint64_t total, std::int64_t upto) {
  if (total == 0) return 0.0;
  std::uint64_t acc = 0;
  std::int64_t key = 0;
  std::uint64_t count = 0;
  while (next(key, count)) {
    if (key > upto) break;
    acc += count;
  }
  return static_cast<double>(acc) / static_cast<double>(total);
}

}  // namespace stats_detail

/// Histogram over signed integer keys with O(log n) insert; exposes the
/// empirical PDF and CDF in key order.  Thin wrapper over the shared
/// stats_detail walks.
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t count = 1);

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t count(std::int64_t key) const;

  /// Fraction of samples with exactly this key (0 when total()==0).
  double pdf(std::int64_t key) const;

  /// Fraction of samples with key <= the argument.
  double cdf(std::int64_t key) const;

  /// All (key, count) pairs in increasing key order.
  const std::map<std::int64_t, std::uint64_t>& bins() const noexcept {
    return bins_;
  }

  /// Smallest key k such that cdf(k) >= q (q in (0, 1]); requires total()>0.
  std::int64_t quantile(double q) const;

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Fixed-footprint histogram over unsigned values with power-of-two buckets:
/// bucket 0 holds the value 0, bucket b (1..64) holds [2^(b-1), 2^b).  This
/// is the shape the telemetry subsystem records RTTs, hop distances and
/// gap-run lengths into (obs/metrics.h keeps one atomic bucket array per
/// shard lane and merges them into this type at snapshot time): constant
/// memory, one shift to bin, and the tails the paper's distributions have
/// are still resolved to within a factor of two.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 65;  // value 0, then one per bit width

  /// The bucket a value falls into: 0 for 0, else bit_width(value).
  FR_HOT static int bucket_of(std::uint64_t value) noexcept {
    return value == 0 ? 0 : static_cast<int>(std::bit_width(value));
  }

  /// Inclusive value range covered by a bucket.
  static std::uint64_t bucket_min(int bucket) noexcept {
    return bucket <= 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }
  static std::uint64_t bucket_max(int bucket) noexcept {
    if (bucket <= 0) return 0;
    if (bucket >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << bucket) - 1;
  }

  void add(std::uint64_t value, std::uint64_t count = 1) noexcept {
    add_bucket(bucket_of(value), count);
  }

  /// Adds directly to a bucket (how per-lane atomic arrays merge in).
  void add_bucket(int bucket, std::uint64_t count) noexcept {
    buckets_[static_cast<std::size_t>(bucket)] += count;
    total_ += count;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket_count(int bucket) const noexcept {
    return buckets_[static_cast<std::size_t>(bucket)];
  }
  const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  /// Fraction of samples in buckets up to and including the value's bucket.
  double cdf(std::uint64_t value) const noexcept;

  /// Smallest bucket index whose cumulative count reaches q (q in (0, 1]).
  int quantile_bucket(double q) const noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
};

/// Jaccard index |a ∩ b| / |a ∪ b|; defined as 1.0 for two empty sets
/// (identical), matching the convention used in the paper's Fig 8.
double jaccard(const std::unordered_set<std::uint32_t>& a,
               const std::unordered_set<std::uint32_t>& b);

/// Formats nanoseconds the way the paper prints scan times:
/// "mm:ss.cc" below an hour, "h:mm:ss.cc" above.
std::string format_duration(Nanos ns);

/// Formats an integer with thousands separators: 97807092 -> "97,807,092".
std::string format_count(std::uint64_t n);
std::string format_count(std::int64_t n);

/// Fixed-point percent: format_percent(0.123456) -> "12.3%".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace flashroute::util
