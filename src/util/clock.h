// Time abstraction separating probing logic from wall-clock time.
//
// The paper's evaluation reports scan durations of 17 minutes to 3.5 hours
// at 100 Kpps.  Re-running those scans in real time is neither possible in
// this environment nor necessary: the reported scan time is exactly
// (#probes / probing rate) plus the round-barrier stalls at the tail of a
// scan (§3.2).  All probing engines in this repository are therefore written
// against the `Clock` interface below.  `SimClock` is advanced by the
// virtual-time runner (10 µs per probe at 100 Kpps); `MonotonicClock` backs
// the real threaded runner and the raw-socket transport.

#pragma once

#include <chrono>
#include <cstdint>

#include "util/annotations.h"

namespace flashroute::util {

/// Nanoseconds since an arbitrary epoch.  Signed so intervals can be
/// subtracted freely.
using Nanos = std::int64_t;

constexpr Nanos kMicrosecond = 1'000;
constexpr Nanos kMillisecond = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

class Clock {
 public:
  virtual ~Clock() = default;
  FR_HOT virtual Nanos now() const noexcept = 0;
};

/// Virtual clock advanced explicitly by the simulation runner.
class SimClock final : public Clock {
 public:
  explicit SimClock(Nanos start = 0) noexcept : now_(start) {}

  FR_HOT Nanos now() const noexcept override { return now_; }
  FR_HOT void advance(Nanos delta) noexcept { now_ += delta; }

  /// Moves the clock forward to `t`; never moves it backwards.
  FR_HOT void advance_to(Nanos t) noexcept {
    if (t > now_) now_ = t;
  }

 private:
  Nanos now_;
};

/// Real monotonic clock (std::chrono::steady_clock).
class MonotonicClock final : public Clock {
 public:
  // fr-lint: allow(det-wallclock): the one sanctioned wall-clock read — every
  // engine sees time only through the Clock interface.
  FR_HOT Nanos now() const noexcept override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace flashroute::util
