// Deterministic crash-point injection for crash-safety tests.
//
// A crash point is a named site planted on a durability-critical path:
//
//   FR_CRASH_POINT(crash::kJournalAppend);
//
// Disarmed (the default, and the only production state) the macro is one
// relaxed atomic load of a global flag plus a never-taken branch — no
// string compare, no function call.  Armed via the environment variable
//
//   FR_CRASH_POINT=<site>[:N]
//
// the Nth execution of the named site (N defaults to 1) terminates the
// process immediately with std::_Exit(kCrashExitCode): no destructors, no
// atexit handlers, no stream flushing — the closest portable stand-in for
// kill -9 at an exact instruction boundary.  Tests fork a daemon child,
// arm one site in its environment, and assert the parent-side recovery
// invariants after the child dies with kCrashExitCode.
//
// The inventory of planted sites lives in crash::kInventory so tests can
// iterate "kill at every site" without hand-maintaining a parallel list.

#pragma once

#include <atomic>
#include <cstddef>

namespace flashroute::util {

/// Exit status used by an armed crash point (distinguishable from normal
/// exits and from signal deaths in waitpid status).
inline constexpr int kCrashExitCode = 42;

namespace detail {
// fr-atomic: armed flag — set once by crash_points_reload, read by every
// FR_CRASH_POINT site with relaxed ordering (a missed update only delays
// arming by one pass; tests reload explicitly after setenv).
extern std::atomic<bool> g_crash_points_armed;
}  // namespace detail

/// True when FR_CRASH_POINT names a site in the environment.
inline bool crash_points_armed() noexcept {
  return detail::g_crash_points_armed.load(std::memory_order_relaxed);
}

/// Re-parses the FR_CRASH_POINT environment variable.  Called once at
/// static-init time; forked test children call it again after setenv so
/// arming does not depend on initializer order relative to the fork.
void crash_points_reload() noexcept;

/// Slow path: called only when armed.  Decrements the countdown if `site`
/// matches the armed site name and _Exits the process when it hits zero.
void crash_point_hit(const char* site) noexcept;

/// Named crash sites planted in the tree.  Keep kInventory in sync: the
/// crash-matrix test iterates it to kill the daemon at every site.
namespace crash {
inline constexpr const char* kJournalAppend = "journal.append";
inline constexpr const char* kArchiveFlush = "archive.flush";
inline constexpr const char* kCheckpointPublish = "checkpoint.publish";
inline constexpr const char* kSubmitJournaled = "daemon.submit.journaled";
inline constexpr const char* kJobStarted = "daemon.job.started";
inline constexpr const char* kBarrierPublished = "daemon.barrier.published";
inline constexpr const char* kJobArchived = "daemon.job.archived";
inline constexpr const char* kJobTerminal = "daemon.job.terminal";

inline constexpr const char* kInventory[] = {
    kJournalAppend,     kArchiveFlush,      kCheckpointPublish,
    kSubmitJournaled,   kJobStarted,        kBarrierPublished,
    kJobArchived,       kJobTerminal,
};
inline constexpr std::size_t kInventorySize =
    sizeof(kInventory) / sizeof(kInventory[0]);
}  // namespace crash

}  // namespace flashroute::util

/// Zero-cost when disarmed: one relaxed load and a never-taken branch.
#define FR_CRASH_POINT(site)                                  \
  do {                                                        \
    if (::flashroute::util::crash_points_armed()) [[unlikely]] \
      ::flashroute::util::crash_point_hit(site);              \
  } while (0)
