// Minimal leveled logger.  Benchmarks and examples print their tables on
// stdout; diagnostics go through here to stderr so table output stays clean.

#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace flashroute::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

void log_message(LogLevel level, const std::string& message);

template <typename... Args>
void logf(LogLevel level, const char* fmt, Args&&... args) {
  if (level < log_threshold()) return;
  char buf[1024];
  std::snprintf(buf, sizeof buf, fmt, std::forward<Args>(args)...);
  log_message(level, buf);
}

#define FR_LOG_DEBUG(...) \
  ::flashroute::util::logf(::flashroute::util::LogLevel::kDebug, __VA_ARGS__)
#define FR_LOG_INFO(...) \
  ::flashroute::util::logf(::flashroute::util::LogLevel::kInfo, __VA_ARGS__)
#define FR_LOG_WARN(...) \
  ::flashroute::util::logf(::flashroute::util::LogLevel::kWarn, __VA_ARGS__)
#define FR_LOG_ERROR(...) \
  ::flashroute::util::logf(::flashroute::util::LogLevel::kError, __VA_ARGS__)

}  // namespace flashroute::util
