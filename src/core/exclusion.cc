#include "core/exclusion.h"

#include <algorithm>
#include <bit>
#include <charconv>

namespace flashroute::core {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

void ExclusionList::add(net::Ipv4Address base, int prefix_length) {
  prefix_length = std::clamp(prefix_length, 0, 32);
  const std::uint32_t mask =
      prefix_length == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_length);
  const std::uint32_t first = base.value() & mask;
  const std::uint32_t last = first | ~mask;
  ranges_.push_back({first, last});
  dirty_ = true;
}

bool ExclusionList::add_entry(std::string_view entry) {
  entry = trim(entry);
  int prefix_length = 32;
  const auto slash = entry.find('/');
  if (slash != std::string_view::npos) {
    const std::string_view length_text = entry.substr(slash + 1);
    const auto [end, ec] =
        std::from_chars(length_text.data(),
                        length_text.data() + length_text.size(),
                        prefix_length);
    if (ec != std::errc{} || end != length_text.data() + length_text.size() ||
        prefix_length < 0 || prefix_length > 32) {
      return false;
    }
    entry = entry.substr(0, slash);
  }
  const auto address = net::Ipv4Address::parse(entry);
  if (!address) return false;
  add(*address, prefix_length);
  return true;
}

std::optional<std::size_t> ExclusionList::load(std::istream& input) {
  std::vector<Range> staged;
  staged.swap(ranges_);  // all-or-nothing: stage current state aside
  std::size_t added = 0;
  std::string line;
  while (std::getline(input, line)) {
    std::string_view view = line;
    const auto comment = view.find('#');
    if (comment != std::string_view::npos) view = view.substr(0, comment);
    view = trim(view);
    if (view.empty()) continue;
    if (!add_entry(view)) {
      ranges_ = std::move(staged);  // restore: reject the whole file
      return std::nullopt;
    }
    ++added;
  }
  ranges_.insert(ranges_.end(), staged.begin(), staged.end());
  dirty_ = true;
  return added;
}

void ExclusionList::add_reserved_defaults() {
  // The bogon set of the real repo's bogon filter — mirrors
  // net::is_probe_excluded so either layer enforces the same policy.
  add(net::Ipv4Address(0x00000000), 8);   // 0.0.0.0/8 "this network"
  add(net::Ipv4Address(0x0A000000), 8);   // 10.0.0.0/8 RFC 1918
  add(net::Ipv4Address(0x64400000), 10);  // 100.64.0.0/10 CGN
  add(net::Ipv4Address(0x7F000000), 8);   // 127.0.0.0/8 loopback
  add(net::Ipv4Address(0xA9FE0000), 16);  // 169.254.0.0/16 link-local
  add(net::Ipv4Address(0xAC100000), 12);  // 172.16.0.0/12 RFC 1918
  add(net::Ipv4Address(0xC0A80000), 16);  // 192.168.0.0/16 RFC 1918
  add(net::Ipv4Address(0xE0000000), 4);   // 224.0.0.0/4 multicast
  add(net::Ipv4Address(0xF0000000), 4);   // 240.0.0.0/4 class E + broadcast
}

void ExclusionList::normalize() const {
  if (!dirty_) return;
  std::sort(ranges_.begin(), ranges_.end());
  std::vector<Range> merged;
  for (const Range& range : ranges_) {
    // Merge overlapping and adjacent ranges.  The adjacency test runs in
    // 64 bits: with back().last == 255.255.255.255 the 32-bit `last + 1`
    // wraps to 0 and a saturated range would stop absorbing its successors.
    if (!merged.empty() &&
        std::uint64_t{range.first} <= std::uint64_t{merged.back().last} + 1) {
      merged.back().last = std::max(merged.back().last, range.last);
    } else {
      merged.push_back(range);
    }
  }
  ranges_ = std::move(merged);

  // Rebuild the trie from the merged ranges via greedy range → CIDR
  // decomposition: repeatedly take the largest block aligned at the cursor
  // that still fits in the remainder.
  trie_.clear();
  for (const Range& range : ranges_) {
    std::uint64_t cursor = range.first;
    const std::uint64_t end = std::uint64_t{range.last} + 1;
    while (cursor < end) {
      const auto base = static_cast<std::uint32_t>(cursor);
      const int align_len = base == 0 ? 0 : 32 - std::countr_zero(base);
      const std::uint64_t remaining = end - cursor;
      const int size_len =
          32 - (63 - std::countl_zero(remaining));  // floor(log2(remaining))
      const int len = std::max(align_len, size_len);
      trie_.insert(base, len);
      cursor += std::uint64_t{1} << (32 - len);
    }
  }
  dirty_ = false;
}

bool ExclusionList::contains(net::Ipv4Address address) const {
  normalize();
  return trie_.contains(address.value());
}

bool ExclusionList::excludes_prefix24(std::uint32_t prefix_index) const {
  normalize();
  return trie_.intersects_prefix24(prefix_index);
}

void ExclusionList::mark_excluded_prefix24(
    std::uint32_t first_prefix, std::uint32_t count,
    std::vector<std::uint64_t>& bitmap) const {
  normalize();
  trie_.mark_prefix24(first_prefix, count, bitmap);
}

std::optional<std::vector<std::uint32_t>> load_target_list(
    std::istream& input, std::uint32_t first_prefix,
    std::uint32_t num_prefixes, std::size_t* skipped) {
  std::vector<std::uint32_t> targets(num_prefixes, 0);
  std::size_t out_of_range = 0;
  std::string line;
  while (std::getline(input, line)) {
    std::string_view view = line;
    const auto comment = view.find('#');
    if (comment != std::string_view::npos) view = view.substr(0, comment);
    while (!view.empty() && (view.front() == ' ' || view.front() == '\t' ||
                             view.front() == '\r')) {
      view.remove_prefix(1);
    }
    while (!view.empty() && (view.back() == ' ' || view.back() == '\t' ||
                             view.back() == '\r')) {
      view.remove_suffix(1);
    }
    if (view.empty()) continue;
    const auto address = net::Ipv4Address::parse(view);
    if (!address) return std::nullopt;
    const std::uint32_t prefix = net::prefix24_index(*address);
    if (prefix < first_prefix || prefix - first_prefix >= num_prefixes) {
      ++out_of_range;
      continue;
    }
    // §3.4: one address per /24 block — first entry wins.
    auto& slot = targets[prefix - first_prefix];
    if (slot == 0) slot = address->value();
  }
  if (skipped != nullptr) *skipped = out_of_range;
  return targets;
}

}  // namespace flashroute::core
