#include "core/exclusion.h"

#include <algorithm>
#include <charconv>

namespace flashroute::core {

namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

void ExclusionList::add(net::Ipv4Address base, int prefix_length) {
  prefix_length = std::clamp(prefix_length, 0, 32);
  const std::uint32_t mask =
      prefix_length == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_length);
  const std::uint32_t first = base.value() & mask;
  const std::uint32_t last = first | ~mask;
  ranges_.push_back({first, last});
  dirty_ = true;
}

bool ExclusionList::add_entry(std::string_view entry) {
  entry = trim(entry);
  int prefix_length = 32;
  const auto slash = entry.find('/');
  if (slash != std::string_view::npos) {
    const std::string_view length_text = entry.substr(slash + 1);
    const auto [end, ec] =
        std::from_chars(length_text.data(),
                        length_text.data() + length_text.size(),
                        prefix_length);
    if (ec != std::errc{} || end != length_text.data() + length_text.size() ||
        prefix_length < 0 || prefix_length > 32) {
      return false;
    }
    entry = entry.substr(0, slash);
  }
  const auto address = net::Ipv4Address::parse(entry);
  if (!address) return false;
  add(*address, prefix_length);
  return true;
}

std::optional<std::size_t> ExclusionList::load(std::istream& input) {
  std::vector<Range> staged;
  staged.swap(ranges_);  // all-or-nothing: stage current state aside
  std::size_t added = 0;
  std::string line;
  while (std::getline(input, line)) {
    std::string_view view = line;
    const auto comment = view.find('#');
    if (comment != std::string_view::npos) view = view.substr(0, comment);
    view = trim(view);
    if (view.empty()) continue;
    if (!add_entry(view)) {
      ranges_ = std::move(staged);  // restore: reject the whole file
      return std::nullopt;
    }
    ++added;
  }
  ranges_.insert(ranges_.end(), staged.begin(), staged.end());
  dirty_ = true;
  return added;
}

void ExclusionList::normalize() const {
  if (!dirty_) return;
  std::sort(ranges_.begin(), ranges_.end());
  std::vector<Range> merged;
  for (const Range& range : ranges_) {
    if (!merged.empty() && range.first <= merged.back().last + 1 &&
        merged.back().last != ~std::uint32_t{0}) {
      merged.back().last = std::max(merged.back().last, range.last);
    } else if (!merged.empty() && range.first <= merged.back().last) {
      // covers the wrap-guard case where back().last is the max address
    } else {
      merged.push_back(range);
    }
  }
  ranges_ = std::move(merged);
  dirty_ = false;
}

bool ExclusionList::contains(net::Ipv4Address address) const {
  normalize();
  const std::uint32_t value = address.value();
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), Range{value, value},
      [](const Range& a, const Range& b) { return a.first < b.first; });
  if (it == ranges_.begin()) return false;
  --it;
  return value >= it->first && value <= it->last;
}

bool ExclusionList::excludes_prefix24(std::uint32_t prefix_index) const {
  normalize();
  const std::uint32_t first = prefix_index << 8;
  const std::uint32_t last = first | 0xFF;
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), Range{last, last},
      [](const Range& a, const Range& b) { return a.first < b.first; });
  if (it == ranges_.begin()) return false;
  --it;
  return it->last >= first;
}

std::optional<std::vector<std::uint32_t>> load_target_list(
    std::istream& input, std::uint32_t first_prefix,
    std::uint32_t num_prefixes, std::size_t* skipped) {
  std::vector<std::uint32_t> targets(num_prefixes, 0);
  std::size_t out_of_range = 0;
  std::string line;
  while (std::getline(input, line)) {
    std::string_view view = line;
    const auto comment = view.find('#');
    if (comment != std::string_view::npos) view = view.substr(0, comment);
    while (!view.empty() && (view.front() == ' ' || view.front() == '\t' ||
                             view.front() == '\r')) {
      view.remove_prefix(1);
    }
    while (!view.empty() && (view.back() == ' ' || view.back() == '\t' ||
                             view.back() == '\r')) {
      view.remove_suffix(1);
    }
    if (view.empty()) continue;
    const auto address = net::Ipv4Address::parse(view);
    if (!address) return std::nullopt;
    const std::uint32_t prefix = net::prefix24_index(*address);
    if (prefix < first_prefix || prefix - first_prefix >= num_prefixes) {
      ++out_of_range;
      continue;
    }
    // §3.4: one address per /24 block — first entry wins.
    auto& slot = targets[prefix - first_prefix];
    if (slot == 0) slot = address->value();
  }
  if (skipped != nullptr) *skipped = out_of_range;
  return targets;
}

}  // namespace flashroute::core
