// Binary (patricia-style) trie over CIDR prefixes — the production-grade
// filtering structure of the real FlashRoute's trie/bogon filter.
//
// Where the sorted-range binary search pays O(log n) per query, the trie
// answers membership in at most 32 child steps independent of how many
// ranges are loaded, and — the full-scale win — enumerates every excluded
// /24 in one O(nodes + marked) DFS, so DCB-array construction pays O(1)
// amortized per prefix instead of a range query each (ISSUE 6).
//
// Invariants: a terminal node covers its entire subtree (inserting a
// shorter prefix over a longer one prunes the deeper structure — CIDR
// subsumption), and every reachable non-terminal node leads to at least one
// terminal, so "a node exists at /24 depth" alone proves the block
// intersects an excluded range.

#pragma once

#include <cstdint>
#include <vector>

#include "util/annotations.h"

namespace flashroute::core {

class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back({}); }

  /// Removes every prefix (the root stays).
  void clear() {
    nodes_.clear();
    nodes_.push_back({});
  }

  /// Inserts one CIDR block (host bits of `base` are masked off;
  /// `prefix_length` clamps to 0..32).  Prefixes subsumed by an existing
  /// shorter prefix are no-ops; inserting a shorter prefix prunes the
  /// subsumed deeper structure.
  void insert(std::uint32_t base, int prefix_length);

  /// True when `address` falls inside any inserted block.
  FR_HOT bool contains(std::uint32_t address) const noexcept {
    std::int32_t node = 0;
    for (int depth = 0; depth < 32; ++depth) {
      const Node& n = nodes_[static_cast<std::size_t>(node)];
      if (n.terminal) return true;
      node = n.child[(address >> (31 - depth)) & 1];
      if (node < 0) return false;
    }
    return nodes_[static_cast<std::size_t>(node)].terminal;
  }

  /// True when any address of the /24 block (prefix_index = address >> 8)
  /// falls inside an inserted range.
  FR_HOT bool intersects_prefix24(std::uint32_t prefix_index) const noexcept {
    std::int32_t node = 0;
    for (int depth = 0; depth < 24; ++depth) {
      const Node& n = nodes_[static_cast<std::size_t>(node)];
      if (n.terminal) return true;
      node = n.child[(prefix_index >> (23 - depth)) & 1];
      if (node < 0) return false;
    }
    return true;  // a surviving /24-depth node always has a terminal below
  }

  /// Bulk pass: sets bit (p - first_prefix) in `bitmap` for every /24
  /// prefix p in [first_prefix, first_prefix + count) that intersects an
  /// inserted range.  One DFS over the trie — O(nodes + bits set), not
  /// O(count) queries.  `bitmap` must hold at least (count + 63) / 64 words
  /// and is OR-ed into, not cleared.
  void mark_prefix24(std::uint32_t first_prefix, std::uint32_t count,
                     std::vector<std::uint64_t>& bitmap) const;

  /// Trie size (root included) — the filter's memory accounting.
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t memory_bytes() const noexcept {
    return nodes_.size() * sizeof(Node);
  }
  bool empty() const noexcept {
    const Node& root = nodes_.front();
    return !root.terminal && root.child[0] < 0 && root.child[1] < 0;
  }

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    bool terminal = false;
  };

  void mark_node(std::int32_t node, int depth, std::uint32_t path,
                 std::uint32_t first_prefix, std::uint32_t count,
                 std::vector<std::uint64_t>& bitmap) const;

  std::vector<Node> nodes_;
};

}  // namespace flashroute::core
