#include "core/sharded_tracer.h"

#include <algorithm>
#include <thread>

#include "core/targets.h"
#include "util/rng.h"

namespace flashroute::core {

namespace {

/// Domain tag mixed into every shard's seed so shard streams are unrelated
/// to each other and to the unsharded scan's stream.
constexpr std::uint64_t kShardSeedTag = 0x73686472;  // "shdr"

int log2_exact(std::uint32_t power_of_two) noexcept {
  int bits = 0;
  while ((std::uint32_t{1} << bits) < power_of_two) ++bits;
  return bits;
}

}  // namespace

std::vector<ShardInfo> ShardedTracer::plan(const ShardedTracerConfig& config) {
  const int num_shards = config.num_shards();
  const std::uint32_t shard_size =
      config.base.num_prefixes() / static_cast<std::uint32_t>(num_shards);
  const int workers =
      std::clamp(config.num_workers, 1, num_shards);

  std::vector<ShardInfo> shards(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    ShardInfo& shard = shards[static_cast<std::size_t>(i)];
    shard.index = i;
    // Contiguous balanced assignment: worker w owns every shard i with
    // i*N/L == w, a run of floor-or-ceil(L/N) consecutive shards.
    shard.worker = static_cast<int>(static_cast<std::int64_t>(i) * workers /
                                    num_shards);
    shard.first_prefix =
        config.base.first_prefix + static_cast<std::uint32_t>(i) * shard_size;
    shard.num_prefixes = shard_size;
    shard.probes_per_second =
        config.base.probes_per_second / static_cast<double>(num_shards);
  }
  return shards;
}

ShardedTracer::ShardedTracer(const ShardedTracerConfig& config,
                             ShardRuntimeProvider& provider)
    : config_(config), provider_(provider) {}

std::uint32_t ShardedTracer::target_of(
    std::uint32_t prefix_offset) const noexcept {
  const TracerConfig& base = config_.base;
  if (base.target_override != nullptr &&
      prefix_offset < base.target_override->size() &&
      (*base.target_override)[prefix_offset] != 0) {
    return (*base.target_override)[prefix_offset];
  }
  return random_target(base.target_seed, base.first_prefix + prefix_offset);
}

TracerConfig ShardedTracer::shard_config(const ShardInfo& shard) const {
  TracerConfig cfg = config_.base;
  cfg.first_prefix = shard.first_prefix;
  cfg.prefix_bits = log2_exact(shard.num_prefixes);
  // Per-shard permutation/RNG stream (the determinism anchor): derived from
  // the scan seed and the shard id, never from the worker layout.
  cfg.seed = util::hash_combine(config_.base.seed, kShardSeedTag,
                                static_cast<std::uint64_t>(shard.index));
  // target_seed stays global — targets are keyed by absolute prefix, so the
  // probed addresses are identical for every decomposition.
  cfg.probes_per_second = shard.probes_per_second;
  const std::size_t i = static_cast<std::size_t>(shard.index);
  cfg.hitlist = shard_hitlists_.empty() ? nullptr : &shard_hitlists_[i];
  cfg.target_override =
      shard_targets_.empty() ? nullptr : &shard_targets_[i];
  // Telemetry: shard i writes metric lane i — single writer per lane (a
  // shard runs start-to-finish on one worker), cache-line-isolated from its
  // neighbours, merged only at snapshot time.  The base config's registry /
  // tracer must have been frozen for num_shards() lanes.
  if (cfg.telemetry.registry != nullptr) {
    cfg.telemetry.lane = cfg.telemetry.registry->lane(shard.index);
    cfg.telemetry.lane_id = shard.index;
  }
  // Checkpoint fan-out: shard-tag the set-level sink, and hand each shard
  // its own slice of the resume set.
  const std::size_t index = static_cast<std::size_t>(shard.index);
  if (config_.checkpoint_sink) {
    cfg.checkpoint_sink = [sink = config_.checkpoint_sink,
                           index](const io::ScanCheckpoint& checkpoint) {
      return sink(index, checkpoint);
    };
  }
  cfg.resume_from = nullptr;
  if (config_.resume_from != nullptr &&
      index < config_.resume_from->size() &&
      !(*config_.resume_from)[index].next_backward.empty()) {
    cfg.resume_from = &(*config_.resume_from)[index];
  }
  return cfg;
}

ScanResult ShardedTracer::run() {
  const std::vector<ShardInfo> shards = plan(config_);
  const int workers = shards.empty() ? 1 : shards.back().worker + 1;

  // Slice the global per-prefix tables so each shard indexes from zero.
  const auto slice = [&](const std::vector<std::uint32_t>& table,
                         std::vector<std::vector<std::uint32_t>>& out) {
    out.resize(shards.size());
    for (const ShardInfo& shard : shards) {
      const std::uint32_t offset =
          shard.first_prefix - config_.base.first_prefix;
      auto& dst = out[static_cast<std::size_t>(shard.index)];
      dst.clear();
      for (std::uint32_t i = 0; i < shard.num_prefixes; ++i) {
        const std::size_t src = static_cast<std::size_t>(offset) + i;
        dst.push_back(src < table.size() ? table[src] : 0);
      }
    }
  };
  shard_hitlists_.clear();
  shard_targets_.clear();
  if (config_.base.hitlist != nullptr) slice(*config_.base.hitlist,
                                             shard_hitlists_);
  if (config_.base.target_override != nullptr)
    slice(*config_.base.target_override, shard_targets_);

  std::vector<ScanResult> results(shards.size());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([this, w, &shards, &results] {
      for (const ShardInfo& shard : shards) {
        if (shard.worker != w) continue;
        // The Tracer — and with it the shard's DCB segment — is constructed
        // *inside* the owning worker, so first-touch places each segment on
        // the worker's NUMA node and ring walks stay node-local
        // (DESIGN.md §10).
        Tracer tracer(shard_config(shard), provider_.runtime_for(shard));
        results[static_cast<std::size_t>(shard.index)] = tracer.run();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  return merge_shard_results(std::move(results), shards,
                             config_.base.collect_routes, workers);
}

ScanResult merge_shard_results(std::vector<ScanResult>&& shard_results,
                               const std::vector<ShardInfo>& shards,
                               bool collect_routes, int num_workers) {
  ScanResult merged;
  std::uint32_t total_prefixes = 0;
  for (const ShardInfo& shard : shards) total_prefixes += shard.num_prefixes;
  if (collect_routes) merged.routes.reserve(total_prefixes);
  merged.destination_distance.reserve(total_prefixes);
  merged.trigger_ttl.reserve(total_prefixes);
  merged.measured_distance.reserve(total_prefixes);
  merged.predicted_distance.reserve(total_prefixes);

  std::vector<util::Nanos> worker_time(
      static_cast<std::size_t>(num_workers), 0);
  std::vector<util::Nanos> worker_preprobe_time(
      static_cast<std::size_t>(num_workers), 0);

  for (const ShardInfo& shard : shards) {
    ScanResult& r = shard_results[static_cast<std::size_t>(shard.index)];
    const auto append = [](auto& dst, auto& src) {
      dst.insert(dst.end(), std::make_move_iterator(src.begin()),
                 std::make_move_iterator(src.end()));
    };
    if (collect_routes) append(merged.routes, r.routes);
    append(merged.destination_distance, r.destination_distance);
    append(merged.trigger_ttl, r.trigger_ttl);
    append(merged.measured_distance, r.measured_distance);
    append(merged.predicted_distance, r.predicted_distance);
    append(merged.probe_log, r.probe_log);
    merged.interfaces.insert(r.interfaces.begin(), r.interfaces.end());

    merged.probes_sent += r.probes_sent;
    merged.preprobe_probes += r.preprobe_probes;
    merged.responses += r.responses;
    merged.mismatches += r.mismatches;
    merged.destinations_reached += r.destinations_reached;
    merged.distances_measured += r.distances_measured;
    merged.distances_predicted += r.distances_predicted;
    merged.convergence_stops += r.convergence_stops;
    merged.send_failures += r.send_failures;
    merged.retransmits += r.retransmits;
    merged.probe_timeouts += r.probe_timeouts;
    merged.rate_backoffs += r.rate_backoffs;

    worker_time[static_cast<std::size_t>(shard.worker)] += r.scan_time;
    worker_preprobe_time[static_cast<std::size_t>(shard.worker)] +=
        r.preprobe_time;
  }

  // Parallel makespan: workers run their shard sequences concurrently.
  merged.scan_time =
      *std::max_element(worker_time.begin(), worker_time.end());
  merged.preprobe_time = *std::max_element(worker_preprobe_time.begin(),
                                           worker_preprobe_time.end());
  return merged;
}

}  // namespace flashroute::core
