// The execution environment a probing engine runs against.
//
// The paper's tools interleave two activities: a sending loop that paces
// probes at a configured rate, and a receiving path that processes responses
// as they arrive (decoupled threads in the real tool, §3.2).  `ScanRuntime`
// abstracts both so the same engine code runs
//
//  * deterministically in virtual time against the Internet simulator
//    (sim::SimScanRuntime — `send` advances the virtual clock by one probe
//    slot and delivers any responses that became due), and
//  * in real time against a raw socket (net::RawSocketTransport plus a
//    receiver thread), or against nothing at all (NullRuntime, used to
//    measure the maximum sustainable probing rate for Table 5).
//
// Engines never block on individual responses: they pour probes through
// `send` and handle whatever `drain`/`idle_until` delivers, which is exactly
// the high-parallelism structure of Yarrp and FlashRoute.

#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::core {

class ScanRuntime {
 public:
  /// Called for every received response packet with its arrival time.
  /// The span may point into a preallocated, reused receive slot: it is valid
  /// only for the duration of the call, and a sink that needs the bytes later
  /// must copy them.  This contract is what lets the real-time runtimes keep
  /// the receive hot path free of per-packet allocations.
  using Sink =
      std::function<void(std::span<const std::byte>, util::Nanos arrival)>;

  virtual ~ScanRuntime() = default;

  FR_HOT virtual util::Nanos now() const noexcept = 0;

  /// Paces one probe slot (1/pps) and attempts to put the packet on the
  /// wire.  Returns false when the transmit failed (transient socket error
  /// after bounded retries, injected simulator fault); the pacing slot is
  /// consumed either way.  Callers must handle the failure — the engines
  /// count it and let their retransmission layer recover the probe.
  [[nodiscard]] FR_HOT virtual bool try_send(
      std::span<const std::byte> packet) = 0;

  /// Send-and-tally convenience: failures are counted in send_failures()
  /// rather than surfaced per call.
  FR_HOT void send(std::span<const std::byte> packet) {
    if (!try_send(packet)) ++send_failures_;
  }

  /// Adjusts the pacing rate mid-scan (the Tracer's adaptive backoff).
  /// Default no-op: runtimes without a meaningful throttle (NullRuntime)
  /// and the sharded real-time worker view (whose throttle is shared by
  /// several shards) ignore it.
  virtual void set_rate(double /*probes_per_second*/) {}

  /// Delivers all responses available by now() to `sink`.
  FR_HOT virtual void drain(const Sink& sink) = 0;

  /// Advances to time `t` (the paper's >= 1 s round barrier), delivering
  /// responses that arrive in the meantime.  No-op when t <= now().
  FR_HOT virtual void idle_until(util::Nanos t, const Sink& sink) = 0;

  FR_HOT std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  /// Probes whose transmit failed, as tallied by the send() wrapper.
  /// Engines that call try_send directly keep their own count instead.
  FR_HOT std::uint64_t send_failures() const noexcept {
    return send_failures_;
  }

  /// Responses dropped before reaching the engine (bounded receive rings
  /// overflowing, unclassifiable packets).  0 for runtimes that never drop.
  virtual std::uint64_t packets_dropped() const noexcept { return 0; }

 protected:
  std::uint64_t packets_sent_ = 0;
  std::uint64_t send_failures_ = 0;
};

/// Swallows every probe and never delivers a response.  now() is the real
/// monotonic clock, so a sending loop driven at full speed against this
/// runtime measures the engine's raw packet-generation rate — the quantity
/// Table 5 reports as "non-throttled scan speed".
class NullRuntime final : public ScanRuntime {
 public:
  FR_HOT util::Nanos now() const noexcept override { return clock_.now(); }
  [[nodiscard]] FR_HOT bool try_send(std::span<const std::byte>) override {
    ++packets_sent_;
    return true;
  }
  FR_HOT void drain(const Sink&) override {}
  FR_HOT void idle_until(util::Nanos, const Sink&) override {}

 private:
  util::MonotonicClock clock_;
};

}  // namespace flashroute::core
