// The execution environment a probing engine runs against.
//
// The paper's tools interleave two activities: a sending loop that paces
// probes at a configured rate, and a receiving path that processes responses
// as they arrive (decoupled threads in the real tool, §3.2).  `ScanRuntime`
// abstracts both so the same engine code runs
//
//  * deterministically in virtual time against the Internet simulator
//    (sim::SimScanRuntime — `send` advances the virtual clock by one probe
//    slot and delivers any responses that became due), and
//  * in real time against a raw socket (net::RawSocketTransport plus a
//    receiver thread), or against nothing at all (NullRuntime, used to
//    measure the maximum sustainable probing rate for Table 5).
//
// Engines never block on individual responses: they pour probes through
// `send` and handle whatever `drain`/`idle_until` delivers, which is exactly
// the high-parallelism structure of Yarrp and FlashRoute.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::core {

/// A block of encoded probes submitted in one runtime call — the sim-side
/// analogue of a sendmmsg() iovec array.  Packets live in a fixed-stride
/// reusable buffer owned by the batch, so a gather loop can template-encode
/// directly into `slot(i)` without per-probe allocation; `commit(i, size)`
/// records the encoded length and advances `count`.
class ProbeBatch {
 public:
  static constexpr std::uint32_t kMaxPackets = 64;
  static constexpr std::size_t kStride = 96;

  FR_HOT std::uint32_t count() const noexcept { return count_; }
  FR_HOT bool empty() const noexcept { return count_ == 0; }
  FR_HOT bool full() const noexcept { return count_ == kMaxPackets; }
  FR_HOT void clear() noexcept { count_ = 0; }

  /// Writable backing slot for the next packet to encode.  Valid while
  /// count() < kMaxPackets.
  FR_HOT std::span<std::byte, kStride> slot() noexcept {
    return std::span<std::byte, kStride>(bytes_.data() + count_ * kStride,
                                         kStride);
  }

  /// Seals the packet just encoded into slot() at `size` bytes.
  FR_HOT void commit(std::size_t size) noexcept {
    sizes_[count_] = static_cast<std::uint16_t>(size);
    ++count_;
  }

  /// i-th committed packet, as the runtime sees it on submit.
  FR_HOT std::span<const std::byte> packet(std::uint32_t i) const noexcept {
    return {bytes_.data() + i * kStride, sizes_[i]};
  }

 private:
  alignas(64) std::array<std::byte, kMaxPackets * kStride> bytes_;
  std::array<std::uint16_t, kMaxPackets> sizes_{};
  std::uint32_t count_ = 0;
};

class ScanRuntime {
 public:
  /// Called for every received response packet with its arrival time.
  /// The span may point into a preallocated, reused receive slot: it is valid
  /// only for the duration of the call, and a sink that needs the bytes later
  /// must copy them.  This contract is what lets the real-time runtimes keep
  /// the receive hot path free of per-packet allocations.
  using Sink =
      std::function<void(std::span<const std::byte>, util::Nanos arrival)>;

  virtual ~ScanRuntime() = default;

  FR_HOT virtual util::Nanos now() const noexcept = 0;

  /// Paces one probe slot (1/pps) and attempts to put the packet on the
  /// wire.  Returns false when the transmit failed (transient socket error
  /// after bounded retries, injected simulator fault); the pacing slot is
  /// consumed either way.  Callers must handle the failure — the engines
  /// count it and let their retransmission layer recover the probe.
  [[nodiscard]] FR_HOT virtual bool try_send(
      std::span<const std::byte> packet) = 0;

  /// Send-and-tally convenience: failures are counted in send_failures()
  /// rather than surfaced per call.
  FR_HOT void send(std::span<const std::byte> packet) {
    if (!try_send(packet)) ++send_failures_;
  }

  /// Submits a whole batch of encoded probes, consuming one pacing slot per
  /// packet (the real-world analogue is sendmmsg).  Returns a bitmask with
  /// bit k set when packet k transmitted; callers tally failures from the
  /// mask.  The default is a compat shim that loops try_send, so scalar-only
  /// runtimes participate in the batch protocol unchanged.
  [[nodiscard]] FR_HOT virtual std::uint64_t try_send_batch(
      const ProbeBatch& batch) {
    std::uint64_t ok = 0;
    for (std::uint32_t k = 0; k < batch.count(); ++k) {
      if (try_send(batch.packet(k))) ok |= std::uint64_t{1} << k;
    }
    return ok;
  }

  /// Delivers every response available after a batch submit (recvmmsg
  /// analogue).  Default: plain drain.
  FR_HOT virtual void drain_batch(const Sink& sink) { drain(sink); }

  /// How many probes the engine may gather before the next submit without
  /// changing observable behaviour versus scalar sends.  Real-time runtimes
  /// return kMaxPackets; the deterministic sim runtime bounds this by the
  /// first pending response so batched scans stay byte-identical to scalar
  /// same-seed scans.  Default 1 keeps unaware runtimes effectively scalar.
  FR_HOT virtual std::uint32_t batch_budget() const noexcept { return 1; }

  /// The timestamp the k-th packet (0-based) of the *next* batch submit will
  /// carry as its send time — what a scalar loop would have read from now()
  /// when encoding that probe.  Virtual-time runtimes advance the clock one
  /// probe slot per packet, so this is now() + k * interval; real-time
  /// runtimes just return now().
  FR_HOT virtual util::Nanos send_time_of(std::uint32_t /*k*/) const noexcept {
    return now();
  }

  /// Adjusts the pacing rate mid-scan (the Tracer's adaptive backoff).
  /// Default no-op: runtimes without a meaningful throttle (NullRuntime)
  /// and the sharded real-time worker view (whose throttle is shared by
  /// several shards) ignore it.
  virtual void set_rate(double /*probes_per_second*/) {}

  /// Delivers all responses available by now() to `sink`.
  FR_HOT virtual void drain(const Sink& sink) = 0;

  /// Advances to time `t` (the paper's >= 1 s round barrier), delivering
  /// responses that arrive in the meantime.  No-op when t <= now().
  FR_HOT virtual void idle_until(util::Nanos t, const Sink& sink) = 0;

  FR_HOT std::uint64_t packets_sent() const noexcept { return packets_sent_; }

  /// Probes whose transmit failed, as tallied by the send() wrapper.
  /// Engines that call try_send directly keep their own count instead.
  FR_HOT std::uint64_t send_failures() const noexcept {
    return send_failures_;
  }

  /// Responses dropped before reaching the engine (bounded receive rings
  /// overflowing, unclassifiable packets).  0 for runtimes that never drop.
  virtual std::uint64_t packets_dropped() const noexcept { return 0; }

 protected:
  std::uint64_t packets_sent_ = 0;
  std::uint64_t send_failures_ = 0;
};

/// Swallows every probe and never delivers a response.  now() is the real
/// monotonic clock, so a sending loop driven at full speed against this
/// runtime measures the engine's raw packet-generation rate — the quantity
/// Table 5 reports as "non-throttled scan speed".
class NullRuntime final : public ScanRuntime {
 public:
  FR_HOT util::Nanos now() const noexcept override { return clock_.now(); }
  [[nodiscard]] FR_HOT bool try_send(std::span<const std::byte>) override {
    ++packets_sent_;
    return true;
  }
  [[nodiscard]] FR_HOT std::uint64_t try_send_batch(
      const ProbeBatch& batch) override {
    packets_sent_ += batch.count();
    return batch.count() == 64 ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << batch.count()) - 1;
  }
  FR_HOT std::uint32_t batch_budget() const noexcept override {
    return ProbeBatch::kMaxPackets;
  }
  FR_HOT void drain(const Sink&) override {}
  FR_HOT void idle_until(util::Nanos, const Sink&) override {}

 private:
  util::MonotonicClock clock_;
};

}  // namespace flashroute::core
