// The control-state structure of §3.4 / Fig 5: a flat array of DCBs indexed
// by /24 prefix, with a circular doubly linked list overlaid in random
// permutation order.
//
// The array gives the receiving thread O(1) access to the DCB of any arrived
// response (index = destination /24 prefix - first prefix of the scanned
// range); the overlaid ring lets the sending thread cycle through the
// not-yet-finished destinations in shuffled order and unlink completed ones
// in O(1).  "Prefixes excluded from the scan still occupy their slots."
//
// The array is templated on the DCB layout: `DcbArray` uses the packed
// 11-byte `Dcb` (24-bit links — exactly enough for 2^24 slots, so the array
// itself enforces the full-IPv4 bound), `MutexDcbArray` the paper-faithful
// padded `MutexDcb` for the §3.4 memory-footprint reproduction.
//
// NUMA note: the vector is only default-constructed here; pages are
// first-touched by build_ring/initialize on whichever thread drives the
// scan.  ShardedTracer constructs each shard's Tracer (and therefore its
// DcbArray) inside the owning worker thread, so per-shard DCB segments are
// placed on the worker's local node without any explicit binding.

#pragma once

#include <cstdint>
#include <vector>

#include "core/dcb.h"
#include "util/annotations.h"
#include "util/permutation.h"

namespace flashroute::core {

template <typename DcbT>
class BasicDcbArray {
 public:
  using DcbType = DcbT;
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  explicit BasicDcbArray(std::uint32_t size) : dcbs_(size) {}

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(dcbs_.size());
  }
  DcbType& operator[](std::uint32_t index) noexcept { return dcbs_[index]; }
  const DcbType& operator[](std::uint32_t index) const noexcept {
    return dcbs_[index];
  }

  /// Seeds a fresh keyed permutation over [0, size()) and threads the ring
  /// with it.  Sharded scans derive `seed` from (scan seed, shard id), so
  /// every shard walks its own deterministic shuffle regardless of how many
  /// worker threads drive the scan.
  template <typename Include>
  std::uint32_t build_ring(std::uint64_t seed, Include&& include) {
    const util::RandomPermutation permutation(size(), seed);
    return build_ring(permutation, std::forward<Include>(include));
  }

  /// (Re)threads the ring through every index `include` admits, in the order
  /// of `permutation` (which must cover [0, size())).  Returns the ring size.
  /// Excluded slots are marked kRemoved but keep occupying their array slot.
  template <typename Include>
  std::uint32_t build_ring(const util::RandomPermutation& permutation,
                           Include&& include) {
    head_ = kNone;
    ring_size_ = 0;
    std::uint32_t tail = 0;  // only read once head_ is set (then valid)
    for (std::uint64_t rank = 0; rank < permutation.size(); ++rank) {
      const auto index = static_cast<std::uint32_t>(permutation(rank));
      DcbType& dcb = dcbs_[index];
      if (!include(index)) {
        dcb.set_flag(DcbType::kRemoved);
        continue;
      }
      dcb.clear_flag(DcbType::kRemoved);
      if (head_ == kNone) {
        head_ = tail = index;
        dcb.set_next_index(index);
        dcb.set_previous_index(index);
      } else {
        dcb.set_previous_index(tail);
        dcb.set_next_index(head_);
        dcbs_[tail].set_next_index(index);
        dcbs_[head_].set_previous_index(index);
        tail = index;
      }
      ++ring_size_;
    }
    return ring_size_;
  }

  FR_HOT std::uint32_t head() const noexcept { return head_; }
  FR_HOT std::uint32_t ring_size() const noexcept { return ring_size_; }
  FR_HOT std::uint32_t next(std::uint32_t index) const noexcept {
    return dcbs_[index].next_index();
  }
  bool in_ring(std::uint32_t index) const noexcept {
    return (dcbs_[index].flags() & DcbType::kRemoved) == 0 && ring_size_ > 0;
  }

  /// Repositions the ring cursor (checkpoint resume: the head drifts away
  /// from the permutation start as destinations retire, so a resumed scan
  /// must restore the exact cursor, not the rebuilt ring's first member).
  /// `index` must be a current ring member; kNone empties the cursor.
  void set_head(std::uint32_t index) noexcept {
    if (index != kNone && (dcbs_[index].flags() & DcbType::kRemoved) != 0) {
      return;
    }
    head_ = index;
  }

  /// Unlinks a completed destination from future rounds (sender-side only).
  FR_HOT void remove(std::uint32_t index) noexcept {
    DcbType& dcb = dcbs_[index];
    if ((dcb.flags() & DcbType::kRemoved) != 0) return;
    dcb.set_flag(DcbType::kRemoved);
    if (ring_size_ == 1) {
      head_ = kNone;
    } else {
      dcbs_[dcb.previous_index()].set_next_index(dcb.next_index());
      dcbs_[dcb.next_index()].set_previous_index(dcb.previous_index());
      if (head_ == index) head_ = dcb.next_index();
    }
    --ring_size_;
  }

  /// Bytes of control state — the §3.4 memory-footprint accounting.
  std::size_t memory_bytes() const noexcept {
    return dcbs_.size() * sizeof(DcbType);
  }

 private:
  std::vector<DcbType> dcbs_;
  std::uint32_t head_ = kNone;
  std::uint32_t ring_size_ = 0;
};

using DcbArray = BasicDcbArray<Dcb>;
using MutexDcbArray = BasicDcbArray<MutexDcb>;

}  // namespace flashroute::core
