// Sharded multi-core scan engine.
//
// The paper's headline result is throughput: sending and receiving are
// decoupled and per-response work is O(1) (§3.2, §3.4), so the scan rate is
// limited by how fast probes can be generated and responses absorbed.  One
// Tracer on one core caps that rate; randomized probing is embarrassingly
// parallel across the target space (Yarrp, IMC '17), so this engine
// partitions the /24 range into contiguous *logical shards*, each a
// self-contained sub-scan with its own DCB ring, permutation stream, and
// slice of the global probing-rate budget, and drives them with N worker
// threads.
//
// Determinism: the shard decomposition depends only on the configuration
// (shard_prefix_bits), never on the worker count.  Each shard's permutation
// and RNG stream derive from (scan seed, shard index), each shard keeps its
// own Doubletree stop set, and per-shard results are merged in shard-index
// order — so the merged ScanResult (routes, distances, probe counts) is
// bit-identical for any number of workers given the same seed.  Only the
// scan_time/preprobe_time fields reflect the actual parallel makespan and
// vary with the worker count.
//
// The trade-off versus a single global Tracer: backward-probing convergence
// stops (§3.2's Doubletree redundancy elimination) only see interfaces
// discovered within the same shard, so a sharded scan sends somewhat more
// probes near shard boundaries.  That is the price of order-independence;
// the paper's own tool pays a similar price across its independent vantage
// points.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/result.h"
#include "core/runtime.h"
#include "core/tracer.h"
#include "io/checkpoint.h"

namespace flashroute::core {

/// One logical shard of a sharded scan: a contiguous run of /24 prefixes
/// processed start-to-finish by exactly one worker thread.
struct ShardInfo {
  int index = 0;   ///< shard id — seeds the shard's permutation/RNG stream
  int worker = 0;  ///< worker thread that owns the shard
  std::uint32_t first_prefix = 0;  ///< absolute first /24 index of the shard
  std::uint32_t num_prefixes = 0;  ///< always a power of two
  /// The shard's fair slice of the global budget (global pps / shard count).
  /// Worker-count independent, so virtual-time runtimes pacing by this value
  /// stay deterministic.  Real-time runtimes may instead pace per *worker*
  /// at the sum of its shards' slices — only one shard per worker is active
  /// at a time, so the global budget still holds.
  double probes_per_second = 0.0;
};

/// Supplies the ScanRuntime each shard's sub-scan executes against.
/// `runtime_for` is called from worker threads, concurrently for shards
/// owned by different workers; implementations preallocate per-shard (or
/// per-worker) runtimes up front so the call itself stays lock-free.
class ShardRuntimeProvider {
 public:
  virtual ~ShardRuntimeProvider() = default;
  virtual ScanRuntime& runtime_for(const ShardInfo& shard) = 0;
};

struct ShardedTracerConfig {
  /// The full-range scan configuration (first_prefix/prefix_bits span the
  /// whole scan; per-shard sub-configurations are derived from it).
  TracerConfig base;

  /// Worker threads.  Clamped to the shard count; 1 runs the same shard
  /// sequence sequentially and produces the identical merged result.
  int num_workers = 1;

  /// Each logical shard spans 2^min(shard_prefix_bits, base.prefix_bits)
  /// /24s.  This — not num_workers — fixes the decomposition, which is what
  /// makes results invariant under the worker count.
  int shard_prefix_bits = 10;

  /// Per-shard checkpoint fan-out: when the base config enables
  /// checkpointing, each shard's Tracer hands its checkpoints here (tagged
  /// with the shard index) instead of base.checkpoint_sink.  Called from
  /// worker threads — the installed sink must be thread-safe.  Returning
  /// false kills that shard's sub-scan, like the unsharded sink contract.
  std::function<bool(std::size_t shard, const io::ScanCheckpoint&)>
      checkpoint_sink;

  /// Resume each shard from the matching entry of a previously captured
  /// checkpoint set (index = shard index; must outlive run()).  An entry
  /// with empty per-DCB state (next_backward.empty()) means "no checkpoint
  /// for this shard — start it fresh".
  const std::vector<io::ScanCheckpoint>* resume_from = nullptr;

  int num_shards() const noexcept {
    const int bits = shard_prefix_bits < base.prefix_bits
                         ? base.prefix_bits - shard_prefix_bits
                         : 0;
    return 1 << bits;
  }
};

class ShardedTracer {
 public:
  ShardedTracer(const ShardedTracerConfig& config,
                ShardRuntimeProvider& provider);

  /// Runs all shards to completion across the configured workers and returns
  /// the deterministically merged result.
  [[nodiscard]] ScanResult run();

  /// Same per-/24 target the sub-scans probe (global target_seed keyed by
  /// absolute prefix, so identical for every decomposition).
  std::uint32_t target_of(std::uint32_t prefix_offset) const noexcept;

  /// The shard decomposition and worker assignment for a configuration —
  /// shard i covers a contiguous range, worker w owns the contiguous shard
  /// run [w*L/N, (w+1)*L/N).  Runtime providers use this to preallocate.
  static std::vector<ShardInfo> plan(const ShardedTracerConfig& config);

 private:
  TracerConfig shard_config(const ShardInfo& shard) const;

  ShardedTracerConfig config_;
  ShardRuntimeProvider& provider_;
  /// Per-shard slices of the global hitlist / target-override tables, built
  /// before the workers start so shard configs can point into them.
  std::vector<std::vector<std::uint32_t>> shard_hitlists_;
  std::vector<std::vector<std::uint32_t>> shard_targets_;
};

/// Merges per-shard results in shard order: per-prefix vectors concatenate,
/// counters sum, interface sets union.  scan_time/preprobe_time become the
/// parallel makespan (max over workers of the worker's serial time).
ScanResult merge_shard_results(std::vector<ScanResult>&& shard_results,
                               const std::vector<ShardInfo>& shards,
                               bool collect_routes, int num_workers);

}  // namespace flashroute::core
