// Destination Control Block — the per-destination probing state of §3.4.
//
// The layout mirrors the paper's Listing 1: the destination address, the
// next backward/forward hop TTLs and the forward-probing horizon, plus the
// intrusive circular doubly-linked-list indices that overlay the DCB array
// (Fig 5).  Each DCB carries its own lock; the paper uses a std::mutex and
// notes that "replacing general per-DCB mutexes with primitive atomic
// operations (such as a spinlock over the test-and-set instruction)" would
// shrink the footprint — we default to exactly that 1-byte spinlock and keep
// the mutex variant selectable to reproduce the paper's ~900 MB figure
// (see bench/sec34_memory_footprint).

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/annotations.h"

namespace flashroute::core {

/// 1-byte test-and-set spinlock (the paper's suggested optimization).
/// Meets BasicLockable, so std::lock_guard works.
class SpinLock {
 public:
  FR_HOT void lock() noexcept {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Contention is "highly unlikely" (§3.4): only when the sender visits
      // a destination at the instant one of its responses arrives.
    }
  }
  FR_HOT void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  // fr-atomic: 1-byte test-and-set spinlock flag (acquire/release pair)
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

template <typename Lock>
struct BasicDcb {
  // Flag bits.
  static constexpr std::uint8_t kDestReached = 0x01;  // got host unreachable
  static constexpr std::uint8_t kRemoved = 0x02;      // unlinked from ring

  std::uint32_t destination = 0;  ///< the probed address within this /24

  /* Probing progress information (Listing 1). */
  std::uint8_t next_backward_hop = 0;  ///< 0 = backward probing complete
  std::uint8_t next_forward_hop = 0;
  std::uint8_t forward_horizon = 0;    ///< max_TTL_responded + GapLimit
  std::uint8_t flags = 0;

  /* Doubly linked list pointers (indices into the DCB array). */
  std::uint32_t next_index = 0;
  std::uint32_t previous_index = 0;

  Lock lock;
};

using Dcb = BasicDcb<SpinLock>;
using MutexDcb = BasicDcb<std::mutex>;

}  // namespace flashroute::core
