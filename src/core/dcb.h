// Destination Control Block — the per-destination probing state of §3.4.
//
// The layout mirrors the paper's Listing 1: the destination address, the
// next backward/forward hop TTLs and the forward-probing horizon, plus the
// intrusive circular doubly-linked-list indices that overlay the DCB array
// (Fig 5).  Two variants share one accessor API:
//
//  * `Dcb` — the packed full-scale layout (11 bytes).  The destination is
//    stored as its in-/24 host octet only (the /24 prefix *is* the array
//    index, so storing it again would be redundant), the ring links are
//    24-bit indices (exactly enough for the 2^24 slots of a full-IPv4 scan),
//    and the paper's suggested spinlock ("primitive atomic operations (such
//    as a spinlock over the test-and-set instruction)") is folded into a
//    spare bit of the atomic flags byte — the lock costs no storage at all.
//    2^24 DCBs fit in 176 MiB, versus ~900 MB for the paper's mutex layout.
//
//  * `BasicDcb<Lock>` — the paper-faithful padded layout with a full 32-bit
//    destination, 32-bit links and a discrete lock member.  `MutexDcb`
//    (std::mutex, the paper's Listing 1) stays selectable so
//    bench/sec34_memory_footprint can reproduce the ~900 MB figure;
//    `PaddedDcb` (1-byte test-and-set spinlock) is the intermediate step the
//    paper proposes.
//
// Every flag mutation on the packed variant is an atomic read-modify-write:
// the lock bit shares the byte, so a plain store from the sender could
// otherwise erase a receiver's lock acquisition.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/annotations.h"

namespace flashroute::core {

/// 1-byte test-and-set spinlock (the paper's suggested optimization).
/// Meets BasicLockable, so std::lock_guard works.  Deliberately not an
/// annotated capability: it only ever lives inside a BasicDcb, whose own
/// FR_ACQUIRE/FR_RELEASE contract is the one capability per DCB the
/// thread-safety analysis tracks (a second, nested capability would make
/// every BasicDcb::lock body a false "capability still held" diagnostic).
class SpinLock {
 public:
  FR_HOT void lock() noexcept {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Contention is "highly unlikely" (§3.4): only when the sender visits
      // a destination at the instant one of its responses arrives.
    }
  }
  FR_HOT void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  // fr-atomic: 1-byte test-and-set spinlock flag (acquire/release pair)
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Packed full-scale DCB: 11 bytes, lock folded into the flags byte.
/// Meets BasicLockable (std::lock_guard locks the DCB itself).
///
/// The DCB is itself an annotated capability (DESIGN.md §13): lock/unlock
/// and try_lock carry acquire/release contracts the clang thread-safety
/// analysis checks at every manual call site.  The data fields are
/// deliberately *not* FR_GUARDED_BY the capability: outside the concurrent
/// scan phase (setup, checkpoint restore, single-threaded result drains)
/// they are legitimately accessed unlocked, and the §3.4 contract is
/// "sender and receiver lock only when both may touch the same /24 at
/// once", which the model litmus test (tests/model_dcb_test.cc) proves
/// interleaving-exhaustively instead.
class FR_CAPABILITY("dcb") Dcb {
 public:
  // Flag bits (the top bit is the spinlock; never visible through flags()).
  static constexpr std::uint8_t kDestReached = 0x01;  // got host unreachable
  static constexpr std::uint8_t kRemoved = 0x02;      // unlinked from ring
  static constexpr std::uint8_t kLocked = 0x80;       // spinlock bit

  // --- BasicLockable: spinlock over the flags byte's top bit ---------------
  FR_HOT void lock() noexcept FR_ACQUIRE() {
    while ((flags_.fetch_or(kLocked, std::memory_order_acquire) & kLocked) !=
           0) {
      // Spin: contention is "highly unlikely" (§3.4).
    }
  }
  FR_HOT void unlock() noexcept FR_RELEASE() {
    flags_.fetch_and(static_cast<std::uint8_t>(~kLocked),
                     std::memory_order_release);
  }
  /// Single-attempt claim: true iff the lock bit flipped 0→1 here.
  [[nodiscard]] FR_HOT bool try_lock() noexcept FR_TRY_ACQUIRE(true) {
    return (flags_.fetch_or(kLocked, std::memory_order_acquire) & kLocked) ==
           0;
  }

  // --- Destination: host octet only; the /24 prefix is the array index -----
  FR_HOT std::uint8_t dest_octet() const noexcept { return dest_octet_; }
  FR_HOT void set_dest_octet(std::uint8_t octet) noexcept {
    dest_octet_ = octet;
  }

  // --- Probing progress (Listing 1) ----------------------------------------
  FR_HOT std::uint8_t next_backward_hop() const noexcept {
    return next_backward_hop_;
  }
  FR_HOT void set_next_backward_hop(std::uint8_t ttl) noexcept {
    next_backward_hop_ = ttl;
  }
  FR_HOT std::uint8_t next_forward_hop() const noexcept {
    return next_forward_hop_;
  }
  FR_HOT void set_next_forward_hop(std::uint8_t ttl) noexcept {
    next_forward_hop_ = ttl;
  }
  FR_HOT std::uint8_t forward_horizon() const noexcept {
    return forward_horizon_;
  }
  FR_HOT void set_forward_horizon(std::uint8_t ttl) noexcept {
    forward_horizon_ = ttl;
  }

  // --- Flags (always atomic RMW: the lock bit shares the byte) -------------
  FR_HOT std::uint8_t flags() const noexcept {
    return static_cast<std::uint8_t>(flags_.load(std::memory_order_relaxed) &
                                     ~kLocked);
  }
  FR_HOT void set_flag(std::uint8_t mask) noexcept {
    flags_.fetch_or(static_cast<std::uint8_t>(mask & ~kLocked),
                    std::memory_order_relaxed);
  }
  FR_HOT void clear_flag(std::uint8_t mask) noexcept {
    flags_.fetch_and(static_cast<std::uint8_t>(~(mask & ~kLocked)),
                     std::memory_order_relaxed);
  }
  /// Clears every flag bit except those in `mask` (and the lock bit).
  FR_HOT void retain_flags(std::uint8_t mask) noexcept {
    flags_.fetch_and(static_cast<std::uint8_t>(mask | kLocked),
                     std::memory_order_relaxed);
  }
  /// Overwrites the flag bits (checkpoint restore; the lock bit is spared).
  FR_HOT void store_flags(std::uint8_t value) noexcept {
    flags_.fetch_and(kLocked, std::memory_order_relaxed);
    flags_.fetch_or(static_cast<std::uint8_t>(value & ~kLocked),
                    std::memory_order_relaxed);
  }

  // --- Ring links: 24-bit indices (Fig 5) ----------------------------------
  FR_HOT std::uint32_t next_index() const noexcept { return load24(next_); }
  FR_HOT void set_next_index(std::uint32_t index) noexcept {
    store24(next_, index);
  }
  FR_HOT std::uint32_t previous_index() const noexcept {
    return load24(prev_);
  }
  FR_HOT void set_previous_index(std::uint32_t index) noexcept {
    store24(prev_, index);
  }

 private:
  FR_HOT static std::uint32_t load24(const std::uint8_t (&b)[3]) noexcept {
    return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
           (std::uint32_t{b[2]} << 16);
  }
  FR_HOT static void store24(std::uint8_t (&b)[3],
                             std::uint32_t index) noexcept {
    b[0] = static_cast<std::uint8_t>(index);
    b[1] = static_cast<std::uint8_t>(index >> 8);
    b[2] = static_cast<std::uint8_t>(index >> 16);
  }

  std::uint8_t dest_octet_ = 0;         ///< host octet within this /24
  std::uint8_t next_backward_hop_ = 0;  ///< 0 = backward probing complete
  std::uint8_t next_forward_hop_ = 0;
  std::uint8_t forward_horizon_ = 0;    ///< max_TTL_responded + GapLimit
  std::uint8_t next_[3] = {0, 0, 0};    ///< 24-bit ring successor index
  std::uint8_t prev_[3] = {0, 0, 0};    ///< 24-bit ring predecessor index
  // fr-atomic: flags byte; top bit is the folded spinlock (acquire/release),
  // lower bits are scan flags mutated by relaxed RMW under that lock
  std::atomic<std::uint8_t> flags_{0};
};

static_assert(sizeof(Dcb) <= 12,
              "packed DCB exceeds the full-scale memory budget (§3.4)");

/// Paper-faithful padded DCB (Listing 1): full 32-bit destination, 32-bit
/// links, discrete lock member.  Offers the same accessor API as the packed
/// `Dcb`, so `BasicDcbArray` threads rings through either.
template <typename Lock>
struct FR_CAPABILITY("dcb") BasicDcb {
  static constexpr std::uint8_t kDestReached = 0x01;
  static constexpr std::uint8_t kRemoved = 0x02;

  // Same capability contract as the packed Dcb; the discrete lock member
  // (SpinLock or std::mutex) is unannotated, so the analysis sees exactly
  // one capability per DCB — the DCB itself.
  FR_HOT void lock() noexcept FR_ACQUIRE() { mutex.lock(); }
  FR_HOT void unlock() noexcept FR_RELEASE() { mutex.unlock(); }

  FR_HOT std::uint8_t dest_octet() const noexcept {
    return static_cast<std::uint8_t>(destination & 0xFF);
  }
  FR_HOT void set_dest_octet(std::uint8_t octet) noexcept {
    destination = (destination & ~std::uint32_t{0xFF}) | octet;
  }

  FR_HOT std::uint8_t next_backward_hop() const noexcept {
    return next_backward_hop_;
  }
  FR_HOT void set_next_backward_hop(std::uint8_t ttl) noexcept {
    next_backward_hop_ = ttl;
  }
  FR_HOT std::uint8_t next_forward_hop() const noexcept {
    return next_forward_hop_;
  }
  FR_HOT void set_next_forward_hop(std::uint8_t ttl) noexcept {
    next_forward_hop_ = ttl;
  }
  FR_HOT std::uint8_t forward_horizon() const noexcept {
    return forward_horizon_;
  }
  FR_HOT void set_forward_horizon(std::uint8_t ttl) noexcept {
    forward_horizon_ = ttl;
  }

  FR_HOT std::uint8_t flags() const noexcept { return flags_; }
  FR_HOT void set_flag(std::uint8_t mask) noexcept { flags_ |= mask; }
  FR_HOT void clear_flag(std::uint8_t mask) noexcept {
    flags_ &= static_cast<std::uint8_t>(~mask);
  }
  FR_HOT void retain_flags(std::uint8_t mask) noexcept { flags_ &= mask; }
  FR_HOT void store_flags(std::uint8_t value) noexcept { flags_ = value; }

  FR_HOT std::uint32_t next_index() const noexcept { return next_index_; }
  FR_HOT void set_next_index(std::uint32_t index) noexcept {
    next_index_ = index;
  }
  FR_HOT std::uint32_t previous_index() const noexcept {
    return previous_index_;
  }
  FR_HOT void set_previous_index(std::uint32_t index) noexcept {
    previous_index_ = index;
  }

  std::uint32_t destination = 0;  ///< the probed address within this /24

  /* Probing progress information (Listing 1). */
  std::uint8_t next_backward_hop_ = 0;
  std::uint8_t next_forward_hop_ = 0;
  std::uint8_t forward_horizon_ = 0;
  std::uint8_t flags_ = 0;

  /* Doubly linked list pointers (indices into the DCB array). */
  std::uint32_t next_index_ = 0;
  std::uint32_t previous_index_ = 0;

  Lock mutex;
};

using PaddedDcb = BasicDcb<SpinLock>;
using MutexDcb = BasicDcb<std::mutex>;

}  // namespace flashroute::core
