#include "core/prefix_trie.h"

#include <algorithm>

namespace flashroute::core {

void PrefixTrie::insert(std::uint32_t base, int prefix_length) {
  prefix_length = std::clamp(prefix_length, 0, 32);
  const std::uint32_t mask =
      prefix_length == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_length);
  base &= mask;
  std::int32_t node = 0;
  for (int depth = 0; depth < prefix_length; ++depth) {
    if (nodes_[static_cast<std::size_t>(node)].terminal) {
      return;  // subsumed by a shorter prefix already present
    }
    const int bit = (base >> (31 - depth)) & 1;
    std::int32_t next = nodes_[static_cast<std::size_t>(node)].child[bit];
    if (next < 0) {
      next = static_cast<std::int32_t>(nodes_.size());
      nodes_[static_cast<std::size_t>(node)].child[bit] = next;
      nodes_.push_back({});
    }
    node = next;
  }
  Node& n = nodes_[static_cast<std::size_t>(node)];
  n.terminal = true;
  // Subsumption: the whole subtree is covered now; pruning the links keeps
  // the invariant that every reachable node leads to a terminal.  (Orphaned
  // nodes stay in the vector — ExclusionList rebuilds from merged ranges,
  // so they never accumulate.)
  n.child[0] = n.child[1] = -1;
}

void PrefixTrie::mark_node(std::int32_t node, int depth, std::uint32_t path,
                           std::uint32_t first_prefix, std::uint32_t count,
                           std::vector<std::uint64_t>& bitmap) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.terminal || depth == 24) {
    // This subtree covers (part of) the /24 span
    // [path << (24 - depth), path << (24 - depth) + 2^(24 - depth)).
    const std::uint64_t span_first = std::uint64_t{path} << (24 - depth);
    const std::uint64_t span_last =
        span_first + (std::uint64_t{1} << (24 - depth)) - 1;
    const std::uint64_t window_first = first_prefix;
    const std::uint64_t window_last =
        std::uint64_t{first_prefix} + count - 1;
    const std::uint64_t lo = std::max(span_first, window_first);
    const std::uint64_t hi = std::min(span_last, window_last);
    for (std::uint64_t p = lo; p <= hi; ++p) {
      const std::uint64_t offset = p - first_prefix;
      bitmap[offset >> 6] |= std::uint64_t{1} << (offset & 63);
    }
    return;
  }
  for (int bit = 0; bit < 2; ++bit) {
    const std::int32_t child = n.child[bit];
    if (child >= 0) {
      mark_node(child, depth + 1,
                (path << 1) | static_cast<std::uint32_t>(bit), first_prefix,
                count, bitmap);
    }
  }
}

void PrefixTrie::mark_prefix24(std::uint32_t first_prefix,
                               std::uint32_t count,
                               std::vector<std::uint64_t>& bitmap) const {
  if (count == 0) return;
  mark_node(0, 0, 0, first_prefix, count, bitmap);
}

}  // namespace flashroute::core
