// Target selection: one representative address per /24 block.
//
// Both the paper's tools and ours trace a single address per /24 (§5.4).
// The default is a random host octet; keeping the function shared (and
// keyed by an explicit target seed) lets comparative experiments probe the
// *same* targets with every tool, which is what makes Table 3 an
// apples-to-apples comparison.

#pragma once

#include <cstdint>

#include "util/rng.h"

namespace flashroute::core {

/// Deterministic random representative of `prefix` (a /24 index):
/// host octet in [1, 254].
inline std::uint32_t random_target(std::uint64_t target_seed,
                                   std::uint32_t prefix) noexcept {
  const auto octet = static_cast<std::uint8_t>(
      1 + util::stable_bounded(target_seed, prefix, 254));
  return (prefix << 8) | octet;
}

}  // namespace flashroute::core
