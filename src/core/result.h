// Results of one scan: the discovered interface set, per-destination routes,
// and the counters every table of the paper's evaluation reports.

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/clock.h"

namespace flashroute::core {

/// One discovered hop of a route (responses of all kinds are recorded; the
/// flags tell route analyses which phase produced an entry and whether it
/// came from the destination itself rather than an en-route router).
struct RouteHop {
  static constexpr std::uint8_t kFromDestination = 0x01;
  static constexpr std::uint8_t kPreprobe = 0x02;
  static constexpr std::uint8_t kExtraScan = 0x04;

  std::uint32_t ip = 0;
  std::uint8_t ttl = 0;  ///< hop distance (derived distance for kFromDestination)
  std::uint8_t flags = 0;

  bool operator==(const RouteHop&) const = default;
};

/// One sent probe, for the Table 4 overprobing replay.
struct ProbeLogEntry {
  util::Nanos time = 0;
  std::uint32_t destination = 0;
  std::uint8_t ttl = 0;
  bool preprobe = false;  ///< sent during a (non-folded) preprobing phase

  bool operator==(const ProbeLogEntry&) const = default;
};

struct ScanResult {
  /// Unique responder addresses (router interfaces and responding targets) —
  /// the "Interfaces" column of Tables 1-3.
  std::unordered_set<std::uint32_t> interfaces;

  /// routes[prefix_offset]: hops recorded for that /24's target, unordered
  /// by TTL (responses arrive out of order).  Empty when collection is off.
  std::vector<std::vector<RouteHop>> routes;

  /// Distance to the destination derived from its unreachable responses
  /// (initial TTL - residual TTL + 1); 0 = destination never answered.
  std::vector<std::uint8_t> destination_distance;

  /// The smallest *initial* TTL whose probe elicited an unreachable from the
  /// destination — the "triggering TTL" of §3.3.2, i.e. the traditional
  /// traceroute distance.  Meaningful for scans that sweep TTLs upward;
  /// 0 = never triggered.
  std::vector<std::uint8_t> trigger_ttl;

  /// Preprobing outputs (§3.3): directly measured and proximity-predicted
  /// hop distances per prefix (0 = unavailable).
  std::vector<std::uint8_t> measured_distance;
  std::vector<std::uint8_t> predicted_distance;

  std::uint64_t probes_sent = 0;      ///< includes preprobes, per the paper
  std::uint64_t preprobe_probes = 0;
  std::uint64_t responses = 0;        ///< parsed, non-mismatching responses
  std::uint64_t mismatches = 0;       ///< §5.3 in-flight address modification
  std::uint64_t destinations_reached = 0;
  std::uint64_t distances_measured = 0;
  std::uint64_t distances_predicted = 0;
  std::uint64_t convergence_stops = 0;  ///< backward stops at known hops

  // Resilience counters (DESIGN.md §9).  Not part of the FRSC archive
  // payload — the v1 byte format is frozen; checkpoints carry them
  // separately.
  std::uint64_t send_failures = 0;   ///< try_send returned false
  std::uint64_t retransmits = 0;     ///< probes re-sent after a timeout
  std::uint64_t probe_timeouts = 0;  ///< timeouts with no retransmit budget
  std::uint64_t rate_backoffs = 0;   ///< adaptive rate-halving events

  util::Nanos scan_time = 0;     ///< total, including preprobing & extra scans
  util::Nanos preprobe_time = 0;

  std::vector<ProbeLogEntry> probe_log;  ///< only when requested
};

}  // namespace flashroute::core
