#include "core/tracer.h"

#include <algorithm>
#include <array>
#include <mutex>

#include "core/targets.h"
#include "net/icmp.h"
#include "util/logging.h"

namespace flashroute::core {


Tracer::Tracer(const TracerConfig& config, ScanRuntime& runtime)
    : config_(config),
      runtime_(runtime),
      codec_(config.vantage),
      active_codec_(&codec_),
      dcbs_(config.num_prefixes()),
      target_seed_(config.target_seed) {
  sink_ = [this](std::span<const std::byte> packet, util::Nanos arrival) {
    on_packet(packet, arrival);
  };
}

FR_HOT bool Tracer::fold_mode() const noexcept {
  return config_.preprobe == PreprobeMode::kRandom &&
         config_.split_ttl == 32 && config_.fold_preprobe;
}

bool Tracer::include_in_scan(std::uint32_t index) const {
  const net::Ipv4Address target(dcbs_[index].destination);
  if (net::is_probe_excluded(target)) return false;
  if (config_.exclusions != nullptr &&
      config_.exclusions->excludes_prefix24(net::prefix24_index(target))) {
    return false;  // operator opt-out: skip the whole /24
  }
  return true;
}

std::uint32_t Tracer::target_of(std::uint32_t prefix_offset) const noexcept {
  if (config_.target_override != nullptr &&
      prefix_offset < config_.target_override->size() &&
      (*config_.target_override)[prefix_offset] != 0) {
    return (*config_.target_override)[prefix_offset];
  }
  return random_target(target_seed_, config_.first_prefix + prefix_offset);
}

ScanResult Tracer::run() {
  const std::uint32_t n = config_.num_prefixes();
  result_ = ScanResult{};
  if (config_.collect_routes) result_.routes.assign(n, {});
  result_.destination_distance.assign(n, 0);
  result_.trigger_ttl.assign(n, 0);
  result_.measured_distance.assign(n, 0);
  result_.predicted_distance.assign(n, 0);

  // Initialize DCBs and thread the ring in random permutation order;
  // private/multicast/reserved targets keep their slots but stay out (§3.4).
  for (std::uint32_t i = 0; i < n; ++i) {
    dcbs_[i].destination = target_of(i);
  }
  dcbs_.build_ring(config_.seed, [this](std::uint32_t index) {
    return include_in_scan(index);
  });

  const util::Nanos start = runtime_.now();

  if (config_.preprobe != PreprobeMode::kNone && !fold_mode()) {
    config_.telemetry.begin_phase(obs::ScanPhase::kPreprobe, runtime_.now());
    preprobe_phase();
    predict_distances();
  }
  if (config_.preprobe_only) {
    result_.scan_time = runtime_.now() - start;
    config_.telemetry.finish(runtime_.now());
    return result_;
  }
  initialize_dcbs();

  // In fold mode the preprobe *is* round one: the first round's TTL-32
  // backward probes carry the preprobe bit, so their responses both build
  // topology and measure distances (§3.3.5).
  config_.telemetry.begin_phase(obs::ScanPhase::kMain, runtime_.now());
  main_rounds(codec_, fold_mode(), 0);

  if (config_.extra_scans > 0) {
    config_.telemetry.begin_phase(obs::ScanPhase::kExtra, runtime_.now());
    run_extra_scans();
  }

  result_.scan_time = runtime_.now() - start;
  config_.telemetry.finish(runtime_.now());
  return result_;
}

FR_HOT void Tracer::send_probe(const ProbeCodec& codec, std::uint32_t destination,
                        std::uint8_t ttl, bool preprobe_flag) {
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buffer;
  const std::size_t size =
      codec.encode_udp(net::Ipv4Address(destination), ttl, preprobe_flag,
                       runtime_.now(), buffer);
  if (size == 0) return;
  runtime_.send(std::span<const std::byte>(buffer.data(), size));
  ++result_.probes_sent;
  const obs::ScanTelemetry& tel = config_.telemetry;
  tel.count(tel.ids.probes_sent);
  // Guarded so the disabled path never pays the runtime_.now() call.
  if (tel.tracer != nullptr) tel.tick(runtime_.now());
  if (config_.collect_probe_log) {
    // fr-lint: allow(hot-banned): optional diagnostic probe log, off by default
    result_.probe_log.push_back(
        {runtime_.now(), destination, ttl, preprobe_flag && !fold_mode()});
  }
}

void Tracer::preprobe_phase() {
  const util::Nanos phase_start = runtime_.now();
  const std::uint32_t n = config_.num_prefixes();
  std::uint32_t index = dcbs_.head();
  const std::uint32_t count = dcbs_.ring_size();
  for (std::uint32_t i = 0; i < count; ++i, index = dcbs_.next(index)) {
    std::uint32_t target = dcbs_[index].destination;
    if (config_.preprobe == PreprobeMode::kHitlist &&
        config_.hitlist != nullptr && index < config_.hitlist->size() &&
        (*config_.hitlist)[index] != 0) {
      target = (*config_.hitlist)[index];
    }
    send_probe(codec_, target, config_.max_ttl, /*preprobe_flag=*/true);
    ++result_.preprobe_probes;
    config_.telemetry.count(config_.telemetry.ids.preprobe_probes);
    runtime_.drain(sink_);
  }
  // Allow in-flight preprobe responses to land before splitting routes.
  runtime_.idle_until(runtime_.now() + config_.min_round_duration, sink_);
  result_.preprobe_time = runtime_.now() - phase_start;
  (void)n;
}

void Tracer::predict_distances() {
  const std::uint32_t n = config_.num_prefixes();
  const int span = config_.proximity_span;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (result_.measured_distance[i] != 0) continue;
    // Nearest measured block within the proximity span predicts this one
    // (§3.3.3); ties prefer the preceding block.
    for (int delta = 1; delta <= span; ++delta) {
      const std::int64_t left = static_cast<std::int64_t>(i) - delta;
      if (left >= 0 && result_.measured_distance[left] != 0) {
        result_.predicted_distance[i] = result_.measured_distance[left];
        break;
      }
      const std::uint64_t right = static_cast<std::uint64_t>(i) + delta;
      if (right < n && result_.measured_distance[right] != 0) {
        result_.predicted_distance[i] = result_.measured_distance[right];
        break;
      }
    }
    if (result_.predicted_distance[i] != 0) ++result_.distances_predicted;
  }
}

void Tracer::initialize_dcbs() {
  std::uint32_t index = dcbs_.head();
  const std::uint32_t count = dcbs_.ring_size();
  for (std::uint32_t i = 0; i < count; ++i, index = dcbs_.next(index)) {
    Dcb& dcb = dcbs_[index];
    int split = config_.split_ttl;
    if (result_.measured_distance[index] != 0) {
      split = result_.measured_distance[index];
    } else if (result_.predicted_distance[index] != 0) {
      split = result_.predicted_distance[index];
    }
    split = std::clamp(split, 1, static_cast<int>(config_.max_ttl));
    dcb.next_backward_hop = static_cast<std::uint8_t>(split);
    dcb.next_forward_hop = static_cast<std::uint8_t>(
        std::min(split + 1, static_cast<int>(config_.max_ttl) + 1));
    dcb.forward_horizon = static_cast<std::uint8_t>(
        std::min(split + config_.gap_limit, 255));
    dcb.flags &= Dcb::kRemoved;  // clear everything but ring membership
  }
}

FR_HOT void Tracer::main_rounds(const ProbeCodec& codec, bool flag_first_round,
                         std::uint8_t hop_flags) {
  active_codec_ = &codec;
  current_hop_flags_ = hop_flags;
  bool first_round = true;

  while (dcbs_.ring_size() > 0) {
    const util::Nanos round_start = runtime_.now();
    std::uint32_t current = dcbs_.head();
    const std::uint32_t count = dcbs_.ring_size();

    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t next = dcbs_.next(current);
      Dcb& dcb = dcbs_[current];

      std::uint8_t backward_ttl = 0;
      std::uint8_t forward_ttl = 0;
      bool done = false;
      bool dest_reached = false;
      std::uint8_t last_forward = 0;
      std::uint8_t horizon = 0;
      {
        const std::lock_guard guard(dcb.lock);
        const bool forward_active =
            config_.forward_probing && (dcb.flags & Dcb::kDestReached) == 0 &&
            dcb.next_forward_hop <= dcb.forward_horizon &&
            dcb.next_forward_hop <= config_.max_ttl;
        if (dcb.next_backward_hop == 0 && !forward_active) {
          done = true;
          dest_reached = (dcb.flags & Dcb::kDestReached) != 0;
          last_forward = dcb.next_forward_hop > 0
                             ? static_cast<std::uint8_t>(dcb.next_forward_hop -
                                                         1)
                             : std::uint8_t{0};
          horizon = dcb.forward_horizon;
        } else {
          if (dcb.next_backward_hop > 0) {
            backward_ttl = dcb.next_backward_hop--;
          }
          if (forward_active) {
            forward_ttl = dcb.next_forward_hop++;
          }
        }
      }
      if (done) {
        // Gap-run length (§3.2): how many trailing forward probes went
        // unanswered before the gap limit retired this destination.  Only
        // main-scan DCBs that were forward-probing and never reached the
        // destination have a meaningful run.
        const obs::ScanTelemetry& tel = config_.telemetry;
        if (tel.enabled() && current_hop_flags_ == 0 &&
            config_.forward_probing && !dest_reached && horizon > 0) {
          const int run = static_cast<int>(last_forward) -
                          (static_cast<int>(horizon) - config_.gap_limit);
          if (run > 0) {
            tel.sample(tel.ids.gap_run, static_cast<std::uint64_t>(run));
          }
        }
        dcbs_.remove(current);
        current = next;
        continue;
      }
      if (backward_ttl != 0) {
        send_probe(codec, dcb.destination, backward_ttl,
                   flag_first_round && first_round);
      }
      if (forward_ttl != 0) {
        send_probe(codec, dcb.destination, forward_ttl, false);
      }
      runtime_.drain(sink_);
      current = next;
    }

    const util::Nanos barrier = round_start + config_.min_round_duration;
    if (runtime_.now() < barrier) {
      runtime_.idle_until(barrier, sink_);
    } else {
      runtime_.drain(sink_);
    }
    if (flag_first_round && first_round) {
      // §3.3.5 + §3.3.3: the folded first round measured distances for the
      // responsive targets; predict the neighbours' distances now and jump
      // their backward probing to the predicted split.
      // fr-lint: allow(hot-call): once per scan, at the fold-round barrier
      predict_distances();
      // fr-lint: allow(hot-call): once per scan, at the fold-round barrier
      apply_fold_predictions();
    }
    first_round = false;
  }

  // Collect straggler responses still in flight.
  runtime_.idle_until(runtime_.now() + config_.min_round_duration, sink_);
}

void Tracer::apply_fold_predictions() {
  std::uint32_t index = dcbs_.head();
  const std::uint32_t count = dcbs_.ring_size();
  for (std::uint32_t i = 0; i < count; ++i, index = dcbs_.next(index)) {
    if (result_.measured_distance[index] != 0) continue;
    const std::uint8_t predicted = result_.predicted_distance[index];
    if (predicted == 0) continue;
    Dcb& dcb = dcbs_[index];
    const std::lock_guard guard(dcb.lock);
    if (predicted < dcb.next_backward_hop) dcb.next_backward_hop = predicted;
  }
}

void Tracer::run_extra_scans() {
  const util::RandomPermutation permutation(config_.num_prefixes(),
                                            config_.seed);
  for (int pass = 1; pass <= config_.extra_scans; ++pass) {
    // A shifted source port gives every probe of this pass a new flow label,
    // steering per-flow load balancers onto alternative branches (§5.2).
    const ProbeCodec extra_codec(config_.vantage,
                                 static_cast<std::uint16_t>(pass));
    const std::uint64_t pass_seed =
        util::hash_combine(config_.seed, 0x65787472, pass);

    if (config_.extra_scan_vary_targets) {
      // §5.4 option 2: a fresh representative per /24 for this pass.
      const std::uint64_t pass_target_seed =
          util::hash_combine(config_.target_seed, 0x76617279, pass);
      for (std::uint32_t i = 0; i < config_.num_prefixes(); ++i) {
        dcbs_[i].destination =
            random_target(pass_target_seed, config_.first_prefix + i);
      }
    }
    dcbs_.build_ring(permutation, [this](std::uint32_t index) {
      return include_in_scan(index);
    });
    std::uint32_t index = dcbs_.head();
    const std::uint32_t count = dcbs_.ring_size();
    for (std::uint32_t i = 0; i < count; ++i, index = dcbs_.next(index)) {
      Dcb& dcb = dcbs_[index];
      // Backward-only from a random split; the shared stop set terminates
      // re-exploration of already-known route sections.  With the §5.4
      // heuristic the split stays within (route length + 5), keeping the
      // walks on the route where the load-balanced sections are.
      int start_range = config_.max_ttl;
      if (config_.extra_scan_length_heuristic) {
        int route_length = result_.destination_distance[index];
        if (route_length == 0 && config_.collect_routes) {
          for (const RouteHop& hop : result_.routes[index]) {
            if ((hop.flags & RouteHop::kFromDestination) == 0) {
              route_length = std::max<int>(route_length, hop.ttl);
            }
          }
        }
        if (route_length != 0) {
          start_range = std::min<int>(config_.max_ttl, route_length + 5);
        }
      }
      dcb.next_backward_hop = static_cast<std::uint8_t>(
          1 + util::stable_bounded(pass_seed, dcb.destination,
                                   static_cast<std::uint64_t>(start_range)));
      dcb.next_forward_hop = config_.max_ttl + 1;
      dcb.forward_horizon = 0;
      dcb.flags &= Dcb::kRemoved;
    }
    main_rounds(extra_codec, false, RouteHop::kExtraScan);
  }
}

FR_HOT void Tracer::on_packet(std::span<const std::byte> packet,
                       util::Nanos arrival) {
  const auto parsed = net::parse_response(packet);
  if (!parsed || !parsed->is_icmp) return;
  const auto probe = active_codec_->decode(*parsed);
  if (!probe) return;
  const obs::ScanTelemetry& tel = config_.telemetry;
  if (!probe->source_port_matches) {
    // The quoted destination no longer matches the checksum carried in the
    // source port: the address was modified in flight (§5.3).  Drop it.
    ++result_.mismatches;
    tel.count(tel.ids.mismatches);
    return;
  }
  const std::uint32_t prefix = probe->destination.value() >> 8;
  if (prefix < config_.first_prefix ||
      prefix - config_.first_prefix >= config_.num_prefixes()) {
    return;
  }
  const std::uint32_t index = prefix - config_.first_prefix;
  ++result_.responses;
  if (tel.enabled()) {
    tel.count(tel.ids.responses);
    const util::Nanos rtt = ProbeCodec::rtt(*probe, arrival);
    tel.sample(tel.ids.rtt_us,
               static_cast<std::uint64_t>(std::max<util::Nanos>(rtt, 0)) /
                   1000);
    tel.tick(arrival);
  }

  if (probe->preprobe && !fold_mode()) {
    handle_preprobe_response(index, *parsed, *probe);
  } else {
    handle_main_response(index, *parsed, *probe);
  }
}

FR_HOT void Tracer::record_hop(std::uint32_t index, std::uint32_t ip,
                        std::uint8_t ttl, std::uint8_t flags) {
  // Only en-route router interfaces count as "discovered interfaces" (and
  // populate the Doubletree stop set); destination responses are tracked
  // separately as reached targets.
  if ((flags & RouteHop::kFromDestination) == 0) {
    // fr-lint: allow(hot-banned): Doubletree stop-set insert — bounded by the
    // number of distinct interfaces, not by probe count
    const bool is_new = result_.interfaces.insert(ip).second;
    if (is_new) {
      const obs::ScanTelemetry& tel = config_.telemetry;
      tel.count(tel.ids.interfaces_discovered);
      tel.sample(tel.ids.hop_distance, ttl);
    }
  }
  if (config_.collect_routes) {
    // fr-lint: allow(hot-banned): route output collection, bounded by
    // discovered hops; disable collect_routes for allocation-free scans
    result_.routes[index].push_back({ip, ttl, flags});
  }
}

FR_HOT void Tracer::handle_preprobe_response(std::uint32_t index,
                                      const net::ParsedResponse& parsed,
                                      const DecodedProbe& probe) {
  if (parsed.is_time_exceeded()) {
    // A route longer than the preprobe TTL: still useful topology.
    record_hop(index, parsed.responder.value(), probe.initial_ttl,
               RouteHop::kPreprobe);
    return;
  }
  if (!parsed.is_destination_unreachable()) return;
  const int distance =
      std::max(1, static_cast<int>(probe.initial_ttl) -
                      static_cast<int>(probe.residual_ttl) + 1);
  record_hop(index, parsed.responder.value(), static_cast<std::uint8_t>(
                 std::min(distance, 255)),
             RouteHop::kPreprobe | RouteHop::kFromDestination);
  if (result_.measured_distance[index] == 0) {
    result_.measured_distance[index] =
        static_cast<std::uint8_t>(std::min(distance, 255));
    ++result_.distances_measured;
  }
}

FR_HOT void Tracer::handle_main_response(std::uint32_t index,
                                  const net::ParsedResponse& parsed,
                                  const DecodedProbe& probe) {
  Dcb& dcb = dcbs_[index];

  if (parsed.is_time_exceeded()) {
    const std::uint8_t hop_ttl = probe.initial_ttl;
    const bool was_known = result_.interfaces.contains(parsed.responder.value());
    record_hop(index, parsed.responder.value(), hop_ttl,
               current_hop_flags_ |
                   (probe.preprobe ? RouteHop::kPreprobe : std::uint8_t{0}));

    const std::lock_guard guard(dcb.lock);
    // Horizon: farthest responding hop + GapLimit (§3.4).
    const int horizon =
        std::min(static_cast<int>(hop_ttl) + config_.gap_limit, 255);
    if (horizon > dcb.forward_horizon) {
      dcb.forward_horizon = static_cast<std::uint8_t>(horizon);
    }
    // Backward termination: the response came from the backward segment and
    // hit either TTL 1 or a previously discovered hop (§3.2).
    if (dcb.next_backward_hop > 0 &&
        hop_ttl <= dcb.next_backward_hop + 1) {
      if (hop_ttl == 1) {
        dcb.next_backward_hop = 0;
      } else if (config_.redundancy_removal && was_known) {
        dcb.next_backward_hop = 0;
        ++result_.convergence_stops;
        config_.telemetry.count(config_.telemetry.ids.convergence_stops);
      }
    }
    return;
  }

  if (!parsed.is_destination_unreachable()) return;
  if (parsed.icmp_code != net::kIcmpCodePortUnreachable &&
      parsed.icmp_code != net::kIcmpCodeHostUnreachable &&
      parsed.icmp_code != net::kIcmpCodeProtoUnreachable) {
    return;
  }

  const int distance =
      std::max(1, static_cast<int>(probe.initial_ttl) -
                      static_cast<int>(probe.residual_ttl) + 1);
  const auto clamped = static_cast<std::uint8_t>(std::min(distance, 255));
  record_hop(index, parsed.responder.value(), clamped,
             current_hop_flags_ | RouteHop::kFromDestination |
                 (probe.preprobe ? RouteHop::kPreprobe : std::uint8_t{0}));
  if (result_.destination_distance[index] == 0 ||
      clamped < result_.destination_distance[index]) {
    result_.destination_distance[index] = clamped;
  }
  if (result_.trigger_ttl[index] == 0 ||
      probe.initial_ttl < result_.trigger_ttl[index]) {
    result_.trigger_ttl[index] = probe.initial_ttl;
  }

  const std::lock_guard guard(dcb.lock);
  if ((dcb.flags & Dcb::kDestReached) == 0) {
    dcb.flags |= Dcb::kDestReached;  // stops forward probing (§3.2)
    ++result_.destinations_reached;
    config_.telemetry.count(config_.telemetry.ids.destinations_reached);
  }
  if (probe.preprobe && fold_mode()) {
    // §3.3.5: the folded first round measured the distance — jump backward
    // probing straight below the destination.
    if (result_.measured_distance[index] == 0) {
      result_.measured_distance[index] = clamped;
      ++result_.distances_measured;
    }
    const auto below = static_cast<std::uint8_t>(distance > 1 ? distance - 1
                                                              : 0);
    if (below < dcb.next_backward_hop) dcb.next_backward_hop = below;
  }
}

}  // namespace flashroute::core
