#include "core/tracer.h"

#include <algorithm>
#include <array>
#include <bit>
#include <mutex>

#include "core/targets.h"
#include "net/icmp.h"
#include "util/logging.h"

namespace flashroute::core {


Tracer::Tracer(const TracerConfig& config, ScanRuntime& runtime)
    : config_(config),
      runtime_(runtime),
      codec_(config.vantage),
      active_codec_(&codec_),
      dcbs_(config.num_prefixes()),
      target_seed_(config.target_seed),
      wheel_(std::max<util::Nanos>(config.retransmit_timeout / 32, 1)) {
  sink_ = [this](std::span<const std::byte> packet, util::Nanos arrival) {
    on_packet(packet, arrival);
  };
}

std::uint64_t Tracer::checkpoint_digest() const noexcept {
  using util::hash_combine;
  std::uint64_t digest =
      hash_combine(config_.first_prefix,
                   static_cast<std::uint64_t>(config_.prefix_bits),
                   config_.seed, config_.target_seed);
  digest = hash_combine(digest, config_.split_ttl, config_.max_ttl,
                        config_.gap_limit);
  digest = hash_combine(
      digest, static_cast<std::uint64_t>(config_.preprobe),
      config_.proximity_span,
      (std::uint64_t{config_.forward_probing} << 2) |
          (std::uint64_t{config_.redundancy_removal} << 1) |
          std::uint64_t{config_.fold_preprobe});
  digest = hash_combine(digest, config_.max_retransmits,
                        static_cast<std::uint64_t>(config_.retransmit_timeout),
                        std::uint64_t{config_.adaptive_backoff});
  digest = hash_combine(
      digest, static_cast<std::uint64_t>(config_.checkpoint_interval),
      static_cast<std::uint64_t>(config_.min_round_duration),
      std::uint64_t{config_.collect_routes} << 1 |
          std::uint64_t{config_.collect_probe_log});
  return digest;
}

FR_HOT bool Tracer::fold_mode() const noexcept {
  return config_.preprobe == PreprobeMode::kRandom &&
         config_.split_ttl == 32 && config_.fold_preprobe;
}

bool Tracer::include_in_scan(std::uint32_t index) const {
  const net::Ipv4Address target(destination_of(index));
  if (net::is_probe_excluded(target)) return false;
  if (!excluded_bitmap_.empty() &&
      ((excluded_bitmap_[index >> 6] >> (index & 63)) & 1) != 0) {
    return false;  // operator opt-out: skip the whole /24
  }
  return true;
}

std::uint32_t Tracer::target_of(std::uint32_t prefix_offset) const noexcept {
  if (config_.target_override != nullptr &&
      prefix_offset < config_.target_override->size() &&
      (*config_.target_override)[prefix_offset] != 0) {
    return (*config_.target_override)[prefix_offset];
  }
  return random_target(target_seed_, config_.first_prefix + prefix_offset);
}

ScanResult Tracer::run() {
  const std::uint32_t n = config_.num_prefixes();
  result_ = ScanResult{};
  if (config_.collect_routes) result_.routes.assign(n, {});
  result_.destination_distance.assign(n, 0);
  result_.trigger_ttl.assign(n, 0);
  result_.measured_distance.assign(n, 0);
  result_.predicted_distance.assign(n, 0);

  // Initialize DCBs and thread the ring in random permutation order;
  // private/multicast/reserved targets keep their slots but stay out (§3.4).
  for (std::uint32_t i = 0; i < n; ++i) {
    dcbs_[i].set_dest_octet(static_cast<std::uint8_t>(target_of(i)));
  }
  excluded_bitmap_.clear();
  if (config_.exclusions != nullptr) {
    excluded_bitmap_.assign((n + 63) / 64, 0);
    config_.exclusions->mark_excluded_prefix24(config_.first_prefix, n,
                                               excluded_bitmap_);
  }
  dcbs_.build_ring(config_.seed, [this](std::uint32_t index) {
    return include_in_scan(index);
  });

  if (resilience_enabled()) {
    answered_mask_.assign(n, 0);
    retransmit_left_.assign(n, config_.max_retransmits);
  }
  backoff_level_ = 0;
  rounds_completed_ = 0;
  resume_elapsed_base_ = 0;
  aborted_ = false;

  scan_start_ = runtime_.now();

  bool resuming = false;
  if (config_.resume_from != nullptr) {
    if (config_.resume_from->config_digest == checkpoint_digest()) {
      restore_checkpoint(*config_.resume_from);
      resuming = true;
    } else {
      FR_LOG_WARN("checkpoint config digest mismatch; starting fresh");
    }
  }

  if (!resuming) {
    if (config_.preprobe != PreprobeMode::kNone && !fold_mode()) {
      config_.telemetry.begin_phase(obs::ScanPhase::kPreprobe,
                                    runtime_.now());
      preprobe_phase();
      predict_distances();
    }
    if (config_.preprobe_only) {
      result_.scan_time = runtime_.now() - scan_start_;
      config_.telemetry.finish(runtime_.now());
      return result_;
    }
    initialize_dcbs();
  }

  // In fold mode the preprobe *is* round one: the first round's TTL-32
  // backward probes carry the preprobe bit, so their responses both build
  // topology and measure distances (§3.3.5).  A resumed scan never re-runs
  // the fold round: the earliest checkpoint barrier sits after it.
  config_.telemetry.begin_phase(obs::ScanPhase::kMain, runtime_.now());
  next_checkpoint_ = runtime_.now() + config_.checkpoint_interval;
  main_rounds(codec_, !resuming && fold_mode(), 0);

  if (config_.extra_scans > 0 && !aborted_) {
    config_.telemetry.begin_phase(obs::ScanPhase::kExtra, runtime_.now());
    run_extra_scans();
  }

  result_.scan_time = resume_elapsed_base_ + (runtime_.now() - scan_start_);
  config_.telemetry.finish(runtime_.now());
  return result_;
}

FR_HOT void Tracer::send_probe(const ProbeCodec& codec, std::uint32_t index,
                        std::uint32_t destination, std::uint8_t ttl,
                        bool preprobe_flag) {
  std::array<std::byte, ProbeCodec::kMaxProbeSize> buffer;
  const std::size_t size =
      codec.encode_udp(net::Ipv4Address(destination), ttl, preprobe_flag,
                       runtime_.now(), buffer);
  if (size == 0) return;
  const obs::ScanTelemetry& tel = config_.telemetry;
  const bool sent =
      runtime_.try_send(std::span<const std::byte>(buffer.data(), size));
  if (sent) {
    ++result_.probes_sent;
    tel.count(tel.ids.probes_sent);
    if (config_.collect_probe_log) {
      // fr-lint: allow(hot-banned): optional diagnostic probe log, off by default
      result_.probe_log.push_back(
          {runtime_.now(), destination, ttl, preprobe_flag && !fold_mode()});
    }
  } else {
    ++result_.send_failures;
    if (tel.ids.resilience) tel.count(tel.ids.send_failures);
  }
  // Guarded so the disabled path never pays the runtime_.now() call.
  if (tel.tracer != nullptr) tel.tick(runtime_.now());
  if (retransmit_active_ && ttl >= 1 && ttl <= 64) {
    // Track the probe on the retransmission wheel — failed sends too: the
    // timeout/retransmit path is exactly how a swallowed probe recovers.
    answered_mask_[index] &= ~(std::uint64_t{1} << (ttl - 1));
    wheel_.schedule(runtime_.now() + config_.retransmit_timeout,
                    {index, ttl});
    ++round_probes_;
  }
}

FR_HOT void Tracer::stage_probe(const ProbeCodec& codec,
                                std::uint32_t destination, std::uint8_t ttl,
                                bool preprobe_flag) {
  // Scalar ordering: probe k of a batch is encoded at now() + k slots
  // (before its send) and its post-send telemetry tick reads
  // now() + (k + 1) slots.  send_time_of reproduces both instants while
  // the clock still sits at the gather point.
  const std::uint32_t k = batch_.count();
  if (config_.cycles != nullptr && batch_.empty()) {
    batch_gather_start_ = cycle_clock_.now();
  }
  const std::size_t size =
      codec.encode_udp(net::Ipv4Address(destination), ttl, preprobe_flag,
                       runtime_.send_time_of(k), batch_.slot());
  if (size == 0) return;
  batch_ticks_[k] = runtime_.send_time_of(k + 1);
  batch_.commit(size);
}

FR_HOT void Tracer::flush_batch() {
  if (batch_.empty()) return;
  const obs::ScanTelemetry& tel = config_.telemetry;
  obs::CycleLedger* cycles = config_.cycles;
  util::Nanos submit_start = 0;
  if (cycles != nullptr) {
    submit_start = cycle_clock_.now();
    cycles->add(obs::CycleLedger::kEncode, submit_start - batch_gather_start_,
                batch_.count());
  }
  const std::uint64_t ok = runtime_.try_send_batch(batch_);
  if (cycles != nullptr) {
    cycles->add(obs::CycleLedger::kSend, cycle_clock_.now() - submit_start,
                batch_.count());
  }
  const auto sent = static_cast<std::uint32_t>(std::popcount(ok));
  result_.probes_sent += sent;
  result_.send_failures += batch_.count() - sent;
  for (std::uint32_t k = 0; k < batch_.count(); ++k) {
    if (((ok >> k) & 1) != 0) {
      tel.count(tel.ids.probes_sent);
    } else if (tel.ids.resilience) {
      tel.count(tel.ids.send_failures);
    }
    if (tel.tracer != nullptr) tel.tick(batch_ticks_[k]);
  }
  const std::uint32_t delivered_before = batch_.count();
  batch_.clear();
  if (cycles != nullptr) {
    const util::Nanos deliver_start = cycle_clock_.now();
    runtime_.drain_batch(sink_);
    cycles->add(obs::CycleLedger::kDeliver, cycle_clock_.now() - deliver_start,
                delivered_before);
  } else {
    runtime_.drain_batch(sink_);
  }
}

FR_HOT void Tracer::process_retransmits() {
  if (!retransmit_active_ || wheel_.empty()) return;
  wheel_.expire_due(runtime_.now(), [this](const Outstanding& probe) {
    if ((answered_mask_[probe.index] &
         (std::uint64_t{1} << (probe.ttl - 1))) != 0) {
      return;  // answered within the timeout
    }
    ++round_loss_events_;
    const obs::ScanTelemetry& tel = config_.telemetry;
    if (config_.max_retransmits > 0 && retransmit_left_[probe.index] > 0) {
      --retransmit_left_[probe.index];
      ++result_.retransmits;
      if (tel.ids.resilience) tel.count(tel.ids.retransmits);
      // The re-sent probe carries a fresh send time, so the fault plane
      // draws an independent loss decision for it.
      send_probe(*active_codec_, probe.index, destination_of(probe.index),
                 probe.ttl, false);
    } else {
      ++result_.probe_timeouts;
      if (tel.ids.resilience) tel.count(tel.ids.probe_timeouts);
    }
  });
}

FR_HOT void Tracer::drain_wheel() {
  // Walk the wheel on its natural deadlines: idle to each next deadline so
  // a late response still wins the race against its retransmission, and
  // keep going until retransmissions stop scheduling new entries.
  while (retransmit_active_ && !wheel_.empty()) {
    if (const auto deadline = wheel_.next_deadline()) {
      runtime_.idle_until(std::max(*deadline, runtime_.now()), sink_);
    }
    process_retransmits();
    runtime_.drain(sink_);
  }
}

void Tracer::preprobe_phase() {
  const util::Nanos phase_start = runtime_.now();
  const std::uint32_t n = config_.num_prefixes();
  std::uint32_t index = dcbs_.head();
  const std::uint32_t count = dcbs_.ring_size();
  for (std::uint32_t i = 0; i < count; ++i, index = dcbs_.next(index)) {
    std::uint32_t target = destination_of(index);
    if (config_.preprobe == PreprobeMode::kHitlist &&
        config_.hitlist != nullptr && index < config_.hitlist->size() &&
        (*config_.hitlist)[index] != 0) {
      target = (*config_.hitlist)[index];
    }
    send_probe(codec_, index, target, config_.max_ttl, /*preprobe_flag=*/true);
    ++result_.preprobe_probes;
    config_.telemetry.count(config_.telemetry.ids.preprobe_probes);
    runtime_.drain(sink_);
  }
  // Allow in-flight preprobe responses to land before splitting routes.
  runtime_.idle_until(runtime_.now() + config_.min_round_duration, sink_);
  result_.preprobe_time = runtime_.now() - phase_start;
  (void)n;
}

void Tracer::predict_distances() {
  const std::uint32_t n = config_.num_prefixes();
  const int span = config_.proximity_span;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (result_.measured_distance[i] != 0) continue;
    // Nearest measured block within the proximity span predicts this one
    // (§3.3.3); ties prefer the preceding block.
    for (int delta = 1; delta <= span; ++delta) {
      const std::int64_t left = static_cast<std::int64_t>(i) - delta;
      if (left >= 0 && result_.measured_distance[left] != 0) {
        result_.predicted_distance[i] = result_.measured_distance[left];
        break;
      }
      const std::uint64_t right = static_cast<std::uint64_t>(i) + delta;
      if (right < n && result_.measured_distance[right] != 0) {
        result_.predicted_distance[i] = result_.measured_distance[right];
        break;
      }
    }
    if (result_.predicted_distance[i] != 0) ++result_.distances_predicted;
  }
}

void Tracer::initialize_dcbs() {
  std::uint32_t index = dcbs_.head();
  const std::uint32_t count = dcbs_.ring_size();
  for (std::uint32_t i = 0; i < count; ++i, index = dcbs_.next(index)) {
    Dcb& dcb = dcbs_[index];
    int split = config_.split_ttl;
    if (result_.measured_distance[index] != 0) {
      split = result_.measured_distance[index];
    } else if (result_.predicted_distance[index] != 0) {
      split = result_.predicted_distance[index];
    }
    split = std::clamp(split, 1, static_cast<int>(config_.max_ttl));
    dcb.set_next_backward_hop(static_cast<std::uint8_t>(split));
    dcb.set_next_forward_hop(static_cast<std::uint8_t>(
        std::min(split + 1, static_cast<int>(config_.max_ttl) + 1)));
    dcb.set_forward_horizon(static_cast<std::uint8_t>(
        std::min(split + config_.gap_limit, 255)));
    dcb.retain_flags(Dcb::kRemoved);  // clear everything but ring membership
  }
}

FR_HOT void Tracer::main_rounds(const ProbeCodec& codec, bool flag_first_round,
                         std::uint8_t hop_flags) {
  active_codec_ = &codec;
  current_hop_flags_ = hop_flags;
  bool first_round = true;
  // Retransmission tracking covers the main phase only: extra scans are
  // deliberate re-exploration, not per-hop coverage, and preprobes fold
  // their redundancy into prediction.
  retransmit_active_ = hop_flags == 0 && resilience_enabled();
  round_probes_ = 0;
  round_loss_events_ = 0;
  // Batched sending covers the pure hot path only: retransmission tracking
  // and the probe log need per-probe bookkeeping at send time, so they keep
  // the scalar loop.  The budget handshake with the runtime keeps batched
  // output byte-identical to the scalar path (see flush_batch).
  batch_mode_ = config_.batch_probes && !retransmit_active_ &&
                !config_.collect_probe_log;
  batch_.clear();

  while (dcbs_.ring_size() > 0) {
    const util::Nanos round_start = runtime_.now();
    std::uint32_t current = dcbs_.head();
    const std::uint32_t count = dcbs_.ring_size();

    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t next = dcbs_.next(current);
      Dcb& dcb = dcbs_[current];

      if (batch_mode_ && !batch_.empty() &&
          (batch_.count() >= batch_budget_ ||
           batch_.count() + 2 > ProbeBatch::kMaxPackets)) {
        // Destination-granular flush: a scalar loop never drains between
        // the two probes of one destination, so a batch may always finish
        // the destination it started — but must flush before opening a new
        // one once the budget (or the buffer) is spent.  The flush must
        // come *before* this destination's DCB decision: scalar drains at
        // the end of every destination's sends, so its decisions always
        // see every response due by now — including stragglers addressed
        // to the destination about to be decided.
        flush_batch();
      }

      std::uint8_t backward_ttl = 0;
      std::uint8_t forward_ttl = 0;
      bool done = false;
      bool dest_reached = false;
      std::uint8_t last_forward = 0;
      std::uint8_t horizon = 0;
      {
        const std::lock_guard guard(dcb);
        const bool forward_active =
            config_.forward_probing &&
            (dcb.flags() & Dcb::kDestReached) == 0 &&
            dcb.next_forward_hop() <= dcb.forward_horizon() &&
            dcb.next_forward_hop() <= config_.max_ttl;
        if (dcb.next_backward_hop() == 0 && !forward_active) {
          done = true;
          dest_reached = (dcb.flags() & Dcb::kDestReached) != 0;
          last_forward =
              dcb.next_forward_hop() > 0
                  ? static_cast<std::uint8_t>(dcb.next_forward_hop() - 1)
                  : std::uint8_t{0};
          horizon = dcb.forward_horizon();
        } else {
          if (dcb.next_backward_hop() > 0) {
            backward_ttl = dcb.next_backward_hop();
            dcb.set_next_backward_hop(
                static_cast<std::uint8_t>(backward_ttl - 1));
          }
          if (forward_active) {
            forward_ttl = dcb.next_forward_hop();
            dcb.set_next_forward_hop(
                static_cast<std::uint8_t>(forward_ttl + 1));
          }
        }
      }
      if (done) {
        // Gap-run length (§3.2): how many trailing forward probes went
        // unanswered before the gap limit retired this destination.  Only
        // main-scan DCBs that were forward-probing and never reached the
        // destination have a meaningful run.
        const obs::ScanTelemetry& tel = config_.telemetry;
        if (tel.enabled() && current_hop_flags_ == 0 &&
            config_.forward_probing && !dest_reached && horizon > 0) {
          const int run = static_cast<int>(last_forward) -
                          (static_cast<int>(horizon) - config_.gap_limit);
          if (run > 0) {
            tel.sample(tel.ids.gap_run, static_cast<std::uint64_t>(run));
          }
        }
        dcbs_.remove(current);
        current = next;
        continue;
      }
      if (batch_mode_) {
        if (batch_.empty()) batch_budget_ = runtime_.batch_budget();
        if (backward_ttl != 0) {
          stage_probe(codec, destination_of(current), backward_ttl,
                      flag_first_round && first_round);
        }
        if (forward_ttl != 0) {
          stage_probe(codec, destination_of(current), forward_ttl, false);
        }
        current = next;
        continue;
      }
      if (backward_ttl != 0) {
        send_probe(codec, current, destination_of(current), backward_ttl,
                   flag_first_round && first_round);
      }
      if (forward_ttl != 0) {
        send_probe(codec, current, destination_of(current), forward_ttl,
                   false);
      }
      runtime_.drain(sink_);
      process_retransmits();
      current = next;
    }
    if (batch_mode_) flush_batch();

    const util::Nanos barrier = round_start + config_.min_round_duration;
    if (runtime_.now() < barrier) {
      runtime_.idle_until(barrier, sink_);
    } else {
      runtime_.drain(sink_);
    }
    process_retransmits();
    if (flag_first_round && first_round) {
      // §3.3.5 + §3.3.3: the folded first round measured distances for the
      // responsive targets; predict the neighbours' distances now and jump
      // their backward probing to the predicted split.
      // fr-lint: allow(hot-call): once per scan, at the fold-round barrier
      predict_distances();
      // fr-lint: allow(hot-call): once per scan, at the fold-round barrier
      apply_fold_predictions();
    }
    first_round = false;
    ++rounds_completed_;
    if (retransmit_active_ && config_.adaptive_backoff) {
      // fr-lint: allow(hot-call): once per round, at the barrier
      update_backoff();
    }
    // Cooperative cancellation: checked at the barrier (a probe-free
    // instant) so a cancelled scan never leaves a half-processed batch.
    if (config_.cancel != nullptr &&
        config_.cancel->load(std::memory_order_relaxed)) {
      aborted_ = true;
      retransmit_active_ = false;
      return;
    }
    if (current_hop_flags_ == 0 && config_.checkpoint_interval > 0) {
      // fr-lint: allow(hot-call): once per round, at the barrier
      maybe_checkpoint();
      if (aborted_) {
        retransmit_active_ = false;
        return;
      }
    }
    // Reset after the (possible) checkpoint quiesce, not inside
    // update_backoff: quiesce-era retransmissions would otherwise leak into
    // the next round's loss ratio in the checkpointing run but not in a
    // resumed one, breaking kill/resume equivalence.
    round_probes_ = 0;
    round_loss_events_ = 0;
  }

  // Ring empty: see every still-outstanding probe through its deadline
  // (retiring or retransmitting it), then collect straggler responses.
  drain_wheel();
  runtime_.idle_until(runtime_.now() + config_.min_round_duration, sink_);
  retransmit_active_ = false;
}

void Tracer::update_backoff() {
  // Round loss ratio over probes *attempted* this round (retransmissions
  // included): the signal the paper's §4.2.2 intrusiveness analysis wants
  // reacted to — responses evaporating under rate limiting or loss.
  const double ratio =
      round_probes_ > 0 ? static_cast<double>(round_loss_events_) /
                              static_cast<double>(round_probes_)
                        : 0.0;
  if (ratio > config_.backoff_loss_threshold &&
      backoff_level_ < static_cast<std::uint32_t>(config_.max_backoff_level)) {
    ++backoff_level_;
    runtime_.set_rate(config_.probes_per_second /
                      static_cast<double>(std::uint64_t{1} << backoff_level_));
    ++result_.rate_backoffs;
    const obs::ScanTelemetry& tel = config_.telemetry;
    if (tel.ids.resilience) tel.count(tel.ids.rate_backoffs);
  } else if (backoff_level_ > 0 &&
             ratio < config_.backoff_loss_threshold / 2.0) {
    --backoff_level_;
    runtime_.set_rate(config_.probes_per_second /
                      static_cast<double>(std::uint64_t{1} << backoff_level_));
  }
}

void Tracer::quiesce() {
  // Bring the engine to a probe-free instant: every outstanding wheel entry
  // retired on its natural deadline, then a grace idle long enough for any
  // retransmitted probe's response (and the rate limiters' refill) to land.
  drain_wheel();
  runtime_.idle_until(runtime_.now() + 2 * util::kSecond, sink_);
}

io::ScanCheckpoint Tracer::capture_checkpoint() {
  io::ScanCheckpoint checkpoint;
  checkpoint.header = {config_.first_prefix, config_.prefix_bits,
                       config_.seed};
  checkpoint.config_digest = checkpoint_digest();
  checkpoint.virtual_now = runtime_.now();
  checkpoint.scan_elapsed =
      resume_elapsed_base_ + (runtime_.now() - scan_start_);
  checkpoint.rounds_completed = rounds_completed_;
  checkpoint.backoff_level = backoff_level_;
  checkpoint.ring_head = dcbs_.head();
  const std::uint32_t n = config_.num_prefixes();
  checkpoint.next_backward.resize(n);
  checkpoint.next_forward.resize(n);
  checkpoint.forward_horizon.resize(n);
  checkpoint.dcb_flags.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Dcb& dcb = dcbs_[i];
    checkpoint.next_backward[i] = dcb.next_backward_hop();
    checkpoint.next_forward[i] = dcb.next_forward_hop();
    checkpoint.forward_horizon[i] = dcb.forward_horizon();
    checkpoint.dcb_flags[i] = dcb.flags();
  }
  checkpoint.retransmit_left = retransmit_left_;
  checkpoint.result = result_;
  checkpoint.result.scan_time = checkpoint.scan_elapsed;
  return checkpoint;
}

void Tracer::restore_checkpoint(const io::ScanCheckpoint& checkpoint) {
  result_ = checkpoint.result;
  rounds_completed_ = checkpoint.rounds_completed;
  backoff_level_ = checkpoint.backoff_level;
  resume_elapsed_base_ = checkpoint.scan_elapsed;
  const std::uint32_t n = config_.num_prefixes();
  if (checkpoint.next_backward.size() == n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      Dcb& dcb = dcbs_[i];
      dcb.set_next_backward_hop(checkpoint.next_backward[i]);
      dcb.set_next_forward_hop(checkpoint.next_forward[i]);
      dcb.set_forward_horizon(checkpoint.forward_horizon[i]);
      dcb.store_flags(checkpoint.dcb_flags[i]);
    }
    // Rebuild the ring over the surviving membership.  Removing members
    // from the circular list preserves the permutation's relative order,
    // so threading the permutation through the survivors reproduces the
    // uninterrupted run's ring exactly — except the cursor, which drifted
    // with the retirements and is restored explicitly.
    dcbs_.build_ring(config_.seed, [&checkpoint](std::uint32_t index) {
      return (checkpoint.dcb_flags[index] & Dcb::kRemoved) == 0;
    });
    dcbs_.set_head(checkpoint.ring_head);
  }
  if (retransmit_left_.size() == checkpoint.retransmit_left.size()) {
    retransmit_left_ = checkpoint.retransmit_left;
  }
  if (backoff_level_ > 0) {
    runtime_.set_rate(config_.probes_per_second /
                      static_cast<double>(std::uint64_t{1} << backoff_level_));
  }
}

void Tracer::maybe_checkpoint() {
  if (runtime_.now() < next_checkpoint_) return;
  // The quiesce runs whether or not a sink is installed, so a checkpointing
  // run and its uninterrupted reference share one timeline — the property
  // the kill/resume equivalence tests assert.
  quiesce();
  next_checkpoint_ = runtime_.now() + config_.checkpoint_interval;
  if (!config_.checkpoint_sink) return;
  const io::ScanCheckpoint checkpoint = capture_checkpoint();
  const obs::ScanTelemetry& tel = config_.telemetry;
  if (config_.checkpoint_sink(checkpoint)) {
    if (tel.ids.resilience) tel.count(tel.ids.checkpoints_written);
  } else {
    aborted_ = true;  // the sink's way of killing the scan mid-sweep
  }
}

void Tracer::apply_fold_predictions() {
  std::uint32_t index = dcbs_.head();
  const std::uint32_t count = dcbs_.ring_size();
  for (std::uint32_t i = 0; i < count; ++i, index = dcbs_.next(index)) {
    if (result_.measured_distance[index] != 0) continue;
    const std::uint8_t predicted = result_.predicted_distance[index];
    if (predicted == 0) continue;
    Dcb& dcb = dcbs_[index];
    const std::lock_guard guard(dcb);
    if (predicted < dcb.next_backward_hop()) {
      dcb.set_next_backward_hop(predicted);
    }
  }
}

void Tracer::run_extra_scans() {
  const util::RandomPermutation permutation(config_.num_prefixes(),
                                            config_.seed);
  for (int pass = 1; pass <= config_.extra_scans; ++pass) {
    // A shifted source port gives every probe of this pass a new flow label,
    // steering per-flow load balancers onto alternative branches (§5.2).
    const ProbeCodec extra_codec(config_.vantage,
                                 static_cast<std::uint16_t>(pass));
    const std::uint64_t pass_seed =
        util::hash_combine(config_.seed, 0x65787472, pass);

    if (config_.extra_scan_vary_targets) {
      // §5.4 option 2: a fresh representative per /24 for this pass.
      const std::uint64_t pass_target_seed =
          util::hash_combine(config_.target_seed, 0x76617279, pass);
      for (std::uint32_t i = 0; i < config_.num_prefixes(); ++i) {
        dcbs_[i].set_dest_octet(static_cast<std::uint8_t>(
            random_target(pass_target_seed, config_.first_prefix + i)));
      }
    }
    dcbs_.build_ring(permutation, [this](std::uint32_t index) {
      return include_in_scan(index);
    });
    std::uint32_t index = dcbs_.head();
    const std::uint32_t count = dcbs_.ring_size();
    for (std::uint32_t i = 0; i < count; ++i, index = dcbs_.next(index)) {
      Dcb& dcb = dcbs_[index];
      // Backward-only from a random split; the shared stop set terminates
      // re-exploration of already-known route sections.  With the §5.4
      // heuristic the split stays within (route length + 5), keeping the
      // walks on the route where the load-balanced sections are.
      int start_range = config_.max_ttl;
      if (config_.extra_scan_length_heuristic) {
        int route_length = result_.destination_distance[index];
        if (route_length == 0 && config_.collect_routes) {
          for (const RouteHop& hop : result_.routes[index]) {
            if ((hop.flags & RouteHop::kFromDestination) == 0) {
              route_length = std::max<int>(route_length, hop.ttl);
            }
          }
        }
        if (route_length != 0) {
          start_range = std::min<int>(config_.max_ttl, route_length + 5);
        }
      }
      dcb.set_next_backward_hop(static_cast<std::uint8_t>(
          1 + util::stable_bounded(pass_seed, destination_of(index),
                                   static_cast<std::uint64_t>(start_range))));
      dcb.set_next_forward_hop(config_.max_ttl + 1);
      dcb.set_forward_horizon(0);
      dcb.retain_flags(Dcb::kRemoved);
    }
    main_rounds(extra_codec, false, RouteHop::kExtraScan);
    if (aborted_) return;  // cancel flag fired during this pass
  }
}

FR_HOT void Tracer::on_packet(std::span<const std::byte> packet,
                       util::Nanos arrival) {
  const auto parsed = net::parse_response(packet);
  if (!parsed || !parsed->is_icmp) return;
  const auto probe = active_codec_->decode(*parsed);
  if (!probe) return;
  const obs::ScanTelemetry& tel = config_.telemetry;
  if (!probe->source_port_matches) {
    // The quoted destination no longer matches the checksum carried in the
    // source port: the address was modified in flight (§5.3).  Drop it.
    ++result_.mismatches;
    tel.count(tel.ids.mismatches);
    return;
  }
  const std::uint32_t prefix = probe->destination.value() >> 8;
  if (prefix < config_.first_prefix ||
      prefix - config_.first_prefix >= config_.num_prefixes()) {
    return;
  }
  const std::uint32_t index = prefix - config_.first_prefix;
  ++result_.responses;
  if (tel.enabled()) {
    tel.count(tel.ids.responses);
    const util::Nanos rtt = ProbeCodec::rtt(*probe, arrival);
    tel.sample(tel.ids.rtt_us,
               static_cast<std::uint64_t>(std::max<util::Nanos>(rtt, 0)) /
                   1000);
    tel.tick(arrival);
  }

  if (probe->preprobe && !fold_mode()) {
    handle_preprobe_response(index, *parsed, *probe);
  } else {
    handle_main_response(index, *parsed, *probe);
  }
}

FR_HOT void Tracer::record_hop(std::uint32_t index, std::uint32_t ip,
                        std::uint8_t ttl, std::uint8_t flags) {
  // Only en-route router interfaces count as "discovered interfaces" (and
  // populate the Doubletree stop set); destination responses are tracked
  // separately as reached targets.
  if ((flags & RouteHop::kFromDestination) == 0) {
    // fr-lint: allow(hot-banned): Doubletree stop-set insert — bounded by the
    // number of distinct interfaces, not by probe count
    const bool is_new = result_.interfaces.insert(ip).second;
    if (is_new) {
      const obs::ScanTelemetry& tel = config_.telemetry;
      tel.count(tel.ids.interfaces_discovered);
      tel.sample(tel.ids.hop_distance, ttl);
    }
  }
  if (config_.collect_routes) {
    // fr-lint: allow(hot-banned): route output collection, bounded by
    // discovered hops; disable collect_routes for allocation-free scans
    result_.routes[index].push_back({ip, ttl, flags});
  }
}

FR_HOT void Tracer::handle_preprobe_response(std::uint32_t index,
                                      const net::ParsedResponse& parsed,
                                      const DecodedProbe& probe) {
  if (parsed.is_time_exceeded()) {
    // A route longer than the preprobe TTL: still useful topology.
    record_hop(index, parsed.responder.value(), probe.initial_ttl,
               RouteHop::kPreprobe);
    return;
  }
  if (!parsed.is_destination_unreachable()) return;
  const int distance =
      std::max(1, static_cast<int>(probe.initial_ttl) -
                      static_cast<int>(probe.residual_ttl) + 1);
  record_hop(index, parsed.responder.value(), static_cast<std::uint8_t>(
                 std::min(distance, 255)),
             RouteHop::kPreprobe | RouteHop::kFromDestination);
  if (result_.measured_distance[index] == 0) {
    result_.measured_distance[index] =
        static_cast<std::uint8_t>(std::min(distance, 255));
    ++result_.distances_measured;
  }
}

FR_HOT void Tracer::handle_main_response(std::uint32_t index,
                                  const net::ParsedResponse& parsed,
                                  const DecodedProbe& probe) {
  Dcb& dcb = dcbs_[index];
  if (retransmit_active_ && probe.initial_ttl >= 1 &&
      probe.initial_ttl <= 64) {
    // The wheel entry for this (destination, ttl) will find its bit set
    // and retire without retransmitting.
    answered_mask_[index] |= std::uint64_t{1} << (probe.initial_ttl - 1);
  }

  if (parsed.is_time_exceeded()) {
    const std::uint8_t hop_ttl = probe.initial_ttl;
    const bool was_known = result_.interfaces.contains(parsed.responder.value());
    record_hop(index, parsed.responder.value(), hop_ttl,
               current_hop_flags_ |
                   (probe.preprobe ? RouteHop::kPreprobe : std::uint8_t{0}));

    const std::lock_guard guard(dcb);
    // Horizon: farthest responding hop + GapLimit (§3.4).
    const int horizon =
        std::min(static_cast<int>(hop_ttl) + config_.gap_limit, 255);
    if (horizon > dcb.forward_horizon()) {
      dcb.set_forward_horizon(static_cast<std::uint8_t>(horizon));
    }
    // Backward termination: the response came from the backward segment and
    // hit either TTL 1 or a previously discovered hop (§3.2).
    if (dcb.next_backward_hop() > 0 &&
        hop_ttl <= dcb.next_backward_hop() + 1) {
      if (hop_ttl == 1) {
        dcb.set_next_backward_hop(0);
      } else if (config_.redundancy_removal && was_known) {
        dcb.set_next_backward_hop(0);
        ++result_.convergence_stops;
        config_.telemetry.count(config_.telemetry.ids.convergence_stops);
      }
    }
    return;
  }

  if (!parsed.is_destination_unreachable()) return;
  if (parsed.icmp_code != net::kIcmpCodePortUnreachable &&
      parsed.icmp_code != net::kIcmpCodeHostUnreachable &&
      parsed.icmp_code != net::kIcmpCodeProtoUnreachable) {
    return;
  }

  const int distance =
      std::max(1, static_cast<int>(probe.initial_ttl) -
                      static_cast<int>(probe.residual_ttl) + 1);
  const auto clamped = static_cast<std::uint8_t>(std::min(distance, 255));
  record_hop(index, parsed.responder.value(), clamped,
             current_hop_flags_ | RouteHop::kFromDestination |
                 (probe.preprobe ? RouteHop::kPreprobe : std::uint8_t{0}));
  if (result_.destination_distance[index] == 0 ||
      clamped < result_.destination_distance[index]) {
    result_.destination_distance[index] = clamped;
  }
  if (result_.trigger_ttl[index] == 0 ||
      probe.initial_ttl < result_.trigger_ttl[index]) {
    result_.trigger_ttl[index] = probe.initial_ttl;
  }

  const std::lock_guard guard(dcb);
  if ((dcb.flags() & Dcb::kDestReached) == 0) {
    dcb.set_flag(Dcb::kDestReached);  // stops forward probing (§3.2)
    ++result_.destinations_reached;
    config_.telemetry.count(config_.telemetry.ids.destinations_reached);
  }
  if (probe.preprobe && fold_mode()) {
    // §3.3.5: the folded first round measured the distance — jump backward
    // probing straight below the destination.
    if (result_.measured_distance[index] == 0) {
      result_.measured_distance[index] = clamped;
      ++result_.distances_measured;
    }
    const auto below = static_cast<std::uint8_t>(distance > 1 ? distance - 1
                                                              : 0);
    if (below < dcb.next_backward_hop()) dcb.set_next_backward_hop(below);
  }
}

}  // namespace flashroute::core
