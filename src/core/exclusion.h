// Exclusion lists and target lists.
//
// Ethics appendix: "We promptly added the involved addresses to our
// exclusion list thus removing them from all future experiments" — a real
// deployment must honour opt-outs, so the engine accepts a CIDR exclusion
// list checked before any probe is addressed to a prefix.
//
// §3.4: "FlashRoute also has an option to load IP addresses from an
// exterior file instead but would still only use one address per /24
// block" — the target-list loader implements exactly that: later entries
// for an already-covered /24 are ignored.
//
// File format for both: one entry per line; `#` starts a comment; blank
// lines ignored.  Exclusion entries are `a.b.c.d` or `a.b.c.d/len`;
// target entries are plain addresses.

#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/prefix_trie.h"
#include "net/ipv4.h"

namespace flashroute::core {

/// A set of CIDR ranges.  Mutations stage plain [first, last] ranges;
/// queries lazily merge them and rebuild a patricia trie (PrefixTrie), so
/// membership is O(32) independent of the range count and the full set of
/// excluded /24s comes out of one bulk DFS at DCB-array construction.
class ExclusionList {
 public:
  /// Adds one CIDR range (prefix length 0..32).
  void add(net::Ipv4Address base, int prefix_length);

  /// Parses one `a.b.c.d[/len]` entry; returns false on malformed input.
  bool add_entry(std::string_view entry);

  /// Installs the bogon/reserved-range defaults the real FlashRoute's bogon
  /// filter ships with (RFC 1918, loopback, link-local, CGN, multicast,
  /// class E, this-network, broadcast) — the same set net::is_probe_excluded
  /// hard-codes, unified here so a standalone list can enforce it.
  void add_reserved_defaults();

  /// Loads entries from a stream; returns the number of ranges added, or
  /// nullopt if any line was malformed (nothing is partially applied).
  std::optional<std::size_t> load(std::istream& input);

  /// True when `address` falls inside any excluded range.  (Lazily merges
  /// the ranges and rebuilds the trie on first query after a mutation.)
  bool contains(net::Ipv4Address address) const;

  /// True when any address of the /24 block is excluded — the granularity
  /// at which the scanner skips targets (an excluded host excludes its
  /// whole block, the conservative reading of an opt-out).
  bool excludes_prefix24(std::uint32_t prefix_index) const;

  /// Bulk form of excludes_prefix24: ORs bit (p - first_prefix) into
  /// `bitmap` for every excluded /24 prefix p in the window.  One trie DFS —
  /// O(1) amortized per prefix; used at DCB-array construction.
  void mark_excluded_prefix24(std::uint32_t first_prefix, std::uint32_t count,
                              std::vector<std::uint64_t>& bitmap) const;

  std::size_t size() const noexcept { return ranges_.size(); }
  bool empty() const noexcept { return ranges_.empty(); }

 private:
  struct Range {
    std::uint32_t first;
    std::uint32_t last;

    bool operator<(const Range& other) const noexcept {
      return first < other.first;
    }
  };

  /// Merged, sorted, non-overlapping after normalize(); the trie mirrors
  /// the merged ranges.
  void normalize() const;

  mutable std::vector<Range> ranges_;
  mutable PrefixTrie trie_;
  mutable bool dirty_ = false;
};

/// Loads a target list: one address per line, at most one target per /24
/// (§3.4).  Returns a per-prefix-offset vector sized `num_prefixes` with 0
/// where the file provided no target, suitable for
/// TracerConfig::target_override; out-of-universe entries are counted in
/// `skipped` (if provided) and otherwise ignored.  Returns nullopt if any
/// line is malformed.
std::optional<std::vector<std::uint32_t>> load_target_list(
    std::istream& input, std::uint32_t first_prefix,
    std::uint32_t num_prefixes, std::size_t* skipped = nullptr);

}  // namespace flashroute::core
