// Real-time ScanRuntime with the paper's decoupled architecture (§3.2):
// "Sending probes and processing responses is decoupled ... and is done
// through separate threads."
//
// The engine's thread paces probes onto a `Wire` through a token-bucket
// throttle; a dedicated receiver thread blocks on the wire and queues
// arriving packets, which `drain`/`idle_until` hand to the engine's sink.
// This is the runtime a live deployment composes with a raw-socket Wire;
// tests compose it with an in-memory wire over the simulator and verify
// that the threaded path discovers the same topology the virtual-time path
// does.  The per-DCB locks of §3.4 are load-bearing exactly here: the
// receiver's updates race with the sender's round walk.

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "util/clock.h"
#include "util/token_bucket.h"

namespace flashroute::core {

/// The physical layer a ThreadedRuntime drives: transmit is called from the
/// engine thread, receive from the receiver thread (blocking up to the
/// given timeout).  Implementations must tolerate that concurrency.
class Wire {
 public:
  virtual ~Wire() = default;
  virtual void transmit(std::span<const std::byte> packet) = 0;
  virtual std::optional<std::vector<std::byte>> receive(
      util::Nanos timeout) = 0;
};

class ThreadedRuntime final : public ScanRuntime {
 public:
  ThreadedRuntime(Wire& wire, double probes_per_second)
      : wire_(wire),
        throttle_(probes_per_second, probes_per_second / 50.0 + 1.0,
                  clock_.now()),
        receiver_([this] { receive_loop(); }) {}

  ~ThreadedRuntime() override {
    stopping_.store(true, std::memory_order_relaxed);
    receiver_.join();
  }

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  util::Nanos now() const noexcept override { return clock_.now(); }

  void send(std::span<const std::byte> packet) override {
    while (!throttle_.try_consume(clock_.now())) {
      std::this_thread::yield();
    }
    wire_.transmit(packet);
    ++packets_sent_;
  }

  void drain(const Sink& sink) override {
    std::deque<Arrival> batch;
    {
      const std::lock_guard guard(mutex_);
      batch.swap(queue_);
    }
    for (const Arrival& arrival : batch) {
      sink(arrival.packet, arrival.time);
    }
  }

  void idle_until(util::Nanos t, const Sink& sink) override {
    while (clock_.now() < t) {
      std::unique_lock lock(mutex_);
      queue_ready_.wait_for(
          lock, std::chrono::nanoseconds(
                    std::min<util::Nanos>(t - clock_.now(),
                                          util::kMillisecond)),
          [this] { return !queue_.empty(); });
      std::deque<Arrival> batch;
      batch.swap(queue_);
      lock.unlock();
      for (const Arrival& arrival : batch) {
        sink(arrival.packet, arrival.time);
      }
    }
  }

 private:
  struct Arrival {
    std::vector<std::byte> packet;
    util::Nanos time;
  };

  void receive_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      auto packet = wire_.receive(/*timeout=*/util::kMillisecond);
      if (!packet) continue;
      const util::Nanos time = clock_.now();
      {
        const std::lock_guard guard(mutex_);
        queue_.push_back({std::move(*packet), time});
      }
      queue_ready_.notify_one();
    }
  }

  util::MonotonicClock clock_;
  Wire& wire_;
  util::TokenBucket throttle_;
  std::mutex mutex_;
  std::condition_variable queue_ready_;
  std::deque<Arrival> queue_;
  std::atomic<bool> stopping_{false};
  std::thread receiver_;
};

}  // namespace flashroute::core
