// Real-time ScanRuntimes with the paper's decoupled architecture (§3.2):
// "Sending probes and processing responses is decoupled ... and is done
// through separate threads."
//
// Two runtimes live here:
//
//  * ThreadedRuntime — one engine thread paces probes onto a `Wire` through
//    a token-bucket throttle; a dedicated receiver thread blocks on the wire
//    and publishes arriving packets into a bounded lock-free SPSC ring of
//    preallocated slots.  `drain`/`idle_until` hand a span over each slot to
//    the engine's sink — the receive hot path performs zero heap allocations
//    per packet in steady state.
//
//  * ShardedThreadedRuntime — the multi-core variant backing ShardedTracer:
//    N worker threads each pace their own token-bucket slice of the global
//    pps budget, while a single receiver thread classifies every arriving
//    packet by the /24 its quoted probe targeted (ProbeCodec::
//    classify_prefix24) and routes it to the owning worker's SPSC ring.
//    Rings are strictly single-producer (the receiver) / single-consumer
//    (the worker), so the handoff stays lock-free end to end.
//
// The per-DCB locks of §3.4 are load-bearing exactly here: the receiver's
// updates race with the sender's round walk.  A full ring drops the packet
// (counted in packets_dropped) — the same backpressure a NIC ring imposes.

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/probe_codec.h"
#include "core/runtime.h"
#include "core/sharded_tracer.h"
#include "util/annotations.h"
#include "util/clock.h"
#include "util/spsc_ring.h"
#include "util/token_bucket.h"

namespace flashroute::core {

/// One preallocated receive slot: the packet bytes plus arrival time.
/// Sized to hold any response the scan can receive (ICMP quote of a full
/// probe) with headroom for real-network extras (IP options, longer quotes).
struct PacketSlot {
  static constexpr std::size_t kCapacity = 192;

  util::Nanos time = 0;
  std::uint32_t size = 0;
  std::array<std::byte, kCapacity> data;

  FR_HOT std::span<const std::byte> bytes() const noexcept {
    return {data.data(), size};
  }
};

/// The physical layer the real-time runtimes drive.  `transmit` may be
/// called concurrently from multiple sender threads (sharded runtimes);
/// `receive_into` is only ever called from the single receiver thread.
/// Implementations must tolerate that concurrency.
class Wire {
 public:
  virtual ~Wire() = default;

  /// Attempts to put one packet on the wire.  Returns false when the
  /// transmit failed (transient socket error after bounded retries,
  /// injected simulator fault, unroutable packet) — callers must not
  /// silently drop the failure.
  [[nodiscard]] FR_HOT virtual bool try_transmit(
      std::span<const std::byte> packet) = 0;

  /// Blocks up to `timeout` for one packet, copies it into `buffer`, and
  /// returns its size; returns 0 on timeout.  Packets longer than `buffer`
  /// are dropped (never truncated into a half-parseable prefix).
  FR_HOT virtual std::size_t receive_into(std::span<std::byte> buffer,
                                          util::Nanos timeout) = 0;
};

/// Sleep quantum for pacing/idle waits.  Coarse enough to let other threads
/// run (important when workers outnumber cores), fine enough for the
/// millisecond-scale round barriers the engine uses.
inline constexpr auto kRuntimePollInterval = std::chrono::microseconds(100);

class ThreadedRuntime final : public ScanRuntime {
 public:
  explicit ThreadedRuntime(Wire& wire, double probes_per_second,
                           std::size_t ring_capacity = 4096)
      : wire_(wire),
        throttle_(probes_per_second, probes_per_second / 50.0 + 1.0,
                  clock_.now()),
        ring_(ring_capacity),
        receiver_([this] { receive_loop(); }) {}

  ~ThreadedRuntime() override {
    stopping_.store(true, std::memory_order_relaxed);
    receiver_.join();
  }

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  FR_HOT util::Nanos now() const noexcept override { return clock_.now(); }

  [[nodiscard]] FR_HOT bool try_send(
      std::span<const std::byte> packet) override {
    while (!throttle_.try_consume(clock_.now())) {
      std::this_thread::yield();
    }
    if (!wire_.try_transmit(packet)) return false;
    ++packets_sent_;
    return true;
  }

  /// Batched submit (the sendmmsg analogue): one virtual call pushes the
  /// whole block through the throttle and onto the wire.  Each packet still
  /// consumes its own pacing token, so a batch respects the same rate
  /// budget as a scalar loop.
  [[nodiscard]] FR_HOT std::uint64_t try_send_batch(
      const ProbeBatch& batch) override {
    std::uint64_t ok = 0;
    for (std::uint32_t k = 0; k < batch.count(); ++k) {
      while (!throttle_.try_consume(clock_.now())) {
        std::this_thread::yield();
      }
      if (wire_.try_transmit(batch.packet(k))) {
        ok |= std::uint64_t{1} << k;
        ++packets_sent_;
      }
    }
    return ok;
  }

  /// Real-time responses park in the receive ring until the engine drains
  /// them, whatever the batch size — a full batch only coarsens the drain
  /// cadence, which the ring's depth absorbs.
  FR_HOT std::uint32_t batch_budget() const noexcept override {
    return ProbeBatch::kMaxPackets;
  }

  /// Adaptive-backoff hook: called from the engine thread (the only thread
  /// touching the throttle), settles accrued tokens before switching.
  void set_rate(double probes_per_second) override {
    throttle_.set_rate(probes_per_second, clock_.now());
  }

  FR_HOT void drain(const Sink& sink) override {
    // Zero-allocation hot path: the sink sees a span into the preallocated
    // slot, which is recycled by pop() after the call returns.
    while (PacketSlot* slot = ring_.front()) {
      sink(slot->bytes(), slot->time);
      ring_.pop();
    }
  }

  FR_HOT void idle_until(util::Nanos t, const Sink& sink) override {
    while (clock_.now() < t) {
      drain(sink);
      std::this_thread::sleep_for(kRuntimePollInterval);
    }
    drain(sink);
  }

  FR_HOT std::uint64_t packets_dropped() const noexcept override {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  FR_HOT void receive_loop() {
    // Packets land directly in ring slots; when the ring is full they are
    // received into a scratch slot and dropped.
    PacketSlot scratch;
    while (!stopping_.load(std::memory_order_relaxed)) {
      PacketSlot* slot = ring_.try_claim();
      PacketSlot* target = slot != nullptr ? slot : &scratch;
      const std::size_t size =
          wire_.receive_into(target->data, /*timeout=*/util::kMillisecond);
      if (size == 0) continue;
      if (slot == nullptr) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      slot->size = static_cast<std::uint32_t>(size);
      slot->time = clock_.now();
      ring_.publish();
    }
  }

  util::MonotonicClock clock_;
  Wire& wire_;
  util::TokenBucket throttle_;
  util::SpscRing<PacketSlot> ring_;
  // fr-atomic: receiver-thread drop counter, relaxed; read by accessors
  std::atomic<std::uint64_t> dropped_{0};
  // fr-atomic: destructor -> receiver-thread stop request, relaxed
  std::atomic<bool> stopping_{false};
  std::thread receiver_;
};

/// Real-time ShardRuntimeProvider: per-worker send throttles and SPSC
/// receive rings over one shared Wire, one receiver thread classifying
/// responses to the worker that owns their destination shard.
class ShardedThreadedRuntime final : public ShardRuntimeProvider {
 public:
  ShardedThreadedRuntime(Wire& wire, const ShardedTracerConfig& config,
                         std::size_t ring_capacity = 4096)
      : wire_(wire),
        first_prefix_(config.base.first_prefix),
        num_prefixes_(config.base.num_prefixes()) {
    const std::vector<ShardInfo> shards = ShardedTracer::plan(config);
    const int workers = shards.back().worker + 1;
    shard_shift_ = 0;
    while ((std::uint32_t{1} << shard_shift_) < shards.front().num_prefixes) {
      ++shard_shift_;
    }
    worker_of_shard_.reserve(shards.size());
    std::vector<double> worker_pps(static_cast<std::size_t>(workers), 0.0);
    for (const ShardInfo& shard : shards) {
      worker_of_shard_.push_back(shard.worker);
      // The worker paces at the sum of its shards' slices; only one of its
      // shards probes at a time, so the global budget is respected.
      worker_pps[static_cast<std::size_t>(shard.worker)] +=
          shard.probes_per_second;
    }
    views_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      views_.push_back(std::make_unique<WorkerView>(
          *this, worker_pps[static_cast<std::size_t>(w)], ring_capacity));
    }
    receiver_ = std::thread([this] { receive_loop(); });
  }

  ~ShardedThreadedRuntime() {
    stopping_.store(true, std::memory_order_relaxed);
    receiver_.join();
  }

  ShardedThreadedRuntime(const ShardedThreadedRuntime&) = delete;
  ShardedThreadedRuntime& operator=(const ShardedThreadedRuntime&) = delete;

  ScanRuntime& runtime_for(const ShardInfo& shard) override {
    return *views_[static_cast<std::size_t>(shard.worker)];
  }

  /// Packets lost before reaching any engine: unclassifiable bytes plus
  /// per-worker ring overflows.
  std::uint64_t packets_dropped() const noexcept {
    std::uint64_t total = unclassified_.load(std::memory_order_relaxed);
    for (const auto& view : views_) total += view->packets_dropped();
    return total;
  }

  std::uint64_t packets_sent() const noexcept {
    std::uint64_t total = 0;
    for (const auto& view : views_) total += view->packets_sent();
    return total;
  }

 private:
  /// The per-worker ScanRuntime: consumer side of the worker's ring plus the
  /// worker's slice of the send budget.  One view serves all shards of a
  /// worker — they run sequentially on the worker's thread.
  class WorkerView final : public ScanRuntime {
   public:
    WorkerView(ShardedThreadedRuntime& owner, double pps,
               std::size_t ring_capacity)
        : owner_(owner),
          throttle_(pps, pps / 50.0 + 1.0, owner.clock_.now()),
          ring_(ring_capacity) {}

    FR_HOT util::Nanos now() const noexcept override {
      return owner_.clock_.now();
    }

    [[nodiscard]] FR_HOT bool try_send(
        std::span<const std::byte> packet) override {
      while (!throttle_.try_consume(owner_.clock_.now())) {
        std::this_thread::yield();
      }
      if (!owner_.wire_.try_transmit(packet)) return false;
      ++packets_sent_;
      return true;
    }

    /// Batched submit, same contract as ThreadedRuntime::try_send_batch:
    /// per-packet pacing tokens, one virtual call per block.
    [[nodiscard]] FR_HOT std::uint64_t try_send_batch(
        const ProbeBatch& batch) override {
      std::uint64_t ok = 0;
      for (std::uint32_t k = 0; k < batch.count(); ++k) {
        while (!throttle_.try_consume(owner_.clock_.now())) {
          std::this_thread::yield();
        }
        if (owner_.wire_.try_transmit(batch.packet(k))) {
          ok |= std::uint64_t{1} << k;
          ++packets_sent_;
        }
      }
      return ok;
    }

    FR_HOT std::uint32_t batch_budget() const noexcept override {
      return ProbeBatch::kMaxPackets;
    }

    // set_rate stays the base-class no-op here: this throttle paces the sum
    // of several shards' budgets, so one shard backing off must not slow
    // its siblings.  Per-shard backoff needs per-shard runtimes (the sim
    // provider has them).

    FR_HOT void drain(const Sink& sink) override {
      while (PacketSlot* slot = ring_.front()) {
        sink(slot->bytes(), slot->time);
        ring_.pop();
      }
    }

    FR_HOT void idle_until(util::Nanos t, const Sink& sink) override {
      while (owner_.clock_.now() < t) {
        drain(sink);
        std::this_thread::sleep_for(kRuntimePollInterval);
      }
      drain(sink);
    }

    FR_HOT std::uint64_t packets_dropped() const noexcept override {
      return dropped_.load(std::memory_order_relaxed);
    }

   private:
    friend class ShardedThreadedRuntime;

    ShardedThreadedRuntime& owner_;
    util::TokenBucket throttle_;
    util::SpscRing<PacketSlot> ring_;
    // fr-atomic: receiver-thread ring-overflow counter, relaxed
    std::atomic<std::uint64_t> dropped_{0};
  };

  FR_HOT void receive_loop() {
    PacketSlot scratch;
    while (!stopping_.load(std::memory_order_relaxed)) {
      const std::size_t size =
          wire_.receive_into(scratch.data, /*timeout=*/util::kMillisecond);
      if (size == 0) continue;
      scratch.size = static_cast<std::uint32_t>(size);
      scratch.time = clock_.now();

      // O(1) classification (§3.4's flat-array discipline, applied to shard
      // routing): quoted destination /24 -> shard -> owning worker's ring.
      const auto prefix = ProbeCodec::classify_prefix24(scratch.bytes());
      if (!prefix || *prefix < first_prefix_ ||
          *prefix - first_prefix_ >= num_prefixes_) {
        unclassified_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::uint32_t shard = (*prefix - first_prefix_) >> shard_shift_;
      WorkerView& view = *views_[static_cast<std::size_t>(
          worker_of_shard_[shard])];
      PacketSlot* slot = view.ring_.try_claim();
      if (slot == nullptr) {
        view.dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      slot->time = scratch.time;
      slot->size = scratch.size;
      std::memcpy(slot->data.data(), scratch.data.data(), size);
      view.ring_.publish();
    }
  }

  util::MonotonicClock clock_;
  Wire& wire_;
  std::uint32_t first_prefix_;
  std::uint32_t num_prefixes_;
  int shard_shift_ = 0;
  std::vector<int> worker_of_shard_;
  std::vector<std::unique_ptr<WorkerView>> views_;
  // fr-atomic: receiver-thread unclassifiable-packet counter, relaxed
  std::atomic<std::uint64_t> unclassified_{0};
  // fr-atomic: destructor -> receiver-thread stop request, relaxed
  std::atomic<bool> stopping_{false};
  std::thread receiver_;
};

}  // namespace flashroute::core
