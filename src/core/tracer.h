// The FlashRoute probing engine (§3).
//
// A scan proceeds in three optional phases:
//
//  1. *Preprobing* (§3.3): one TTL-32 probe per /24 measures the hop
//     distance of responsive targets from the residual TTL quoted in their
//     port-unreachable replies; proximity-span prediction extends coverage
//     to neighbouring blocks.  When the main split TTL is 32 and preprobing
//     targets the same addresses as the main scan, the preprobe doubles as
//     the first probing round (§3.3.5) and costs no extra probes.
//
//  2. *Main probing* (§3.2): rounds over the DCB ring, each issuing up to
//     two probes per destination — one backward (towards the vantage, ending
//     at TTL 1 or at a previously discovered interface: Doubletree-style
//     redundancy elimination) and one forward (towards the target, ending at
//     the target or after GapLimit consecutive silent hops).  Rounds last at
//     least one second so responses can steer the next round.
//
//  3. *Discovery-optimized extra scans* (§5.2): backward-only passes from
//     random split TTLs with shifted source ports, steering per-flow load
//     balancers onto alternative branches while the shared stop set keeps
//     re-exploration cheap.
//
// The engine is transport-agnostic: pass a sim::SimScanRuntime for
// deterministic virtual-time scans or a real-time runtime for live probing.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/dcb_array.h"
#include "core/exclusion.h"
#include "core/probe_codec.h"
#include "core/result.h"
#include "core/runtime.h"
#include "io/checkpoint.h"
#include "net/ipv4.h"
#include "obs/cycle_ledger.h"
#include "obs/scan_metrics.h"
#include "util/annotations.h"
#include "util/timing_wheel.h"

namespace flashroute::core {

enum class PreprobeMode {
  kNone,     ///< use the configured split TTL for every destination
  kRandom,   ///< preprobe the same (random) targets the main scan uses
  kHitlist,  ///< preprobe hitlist addresses, scan random targets (§4.1.3)
};

struct TracerConfig {
  // Scanned universe: 2^prefix_bits /24 blocks starting at first_prefix.
  std::uint32_t first_prefix = 0x010000;
  int prefix_bits = 16;

  net::Ipv4Address vantage{0xCB00710A};  // 203.0.113.10
  double probes_per_second = 100'000.0;

  std::uint8_t split_ttl = 16;
  std::uint8_t max_ttl = 32;
  std::uint8_t gap_limit = 5;

  /// Minimum duration of one probing round (§3.2: "each round lasts at
  /// least one second", so responses can steer the next round).  Tests and
  /// real-time demos may shorten it.
  util::Nanos min_round_duration = util::kSecond;

  bool forward_probing = true;
  /// Stop backward probing at previously discovered interfaces (§3.2).
  /// Off (together with forward_probing=false, split_ttl=32,
  /// preprobe=kNone) turns the engine into the paper's Yarrp-32-UDP
  /// simulation: one probe to every hop 1..32 for every destination.
  bool redundancy_removal = true;

  PreprobeMode preprobe = PreprobeMode::kHitlist;
  std::uint8_t proximity_span = 5;
  /// §3.3.5: fold the preprobe into round one when split_ttl == 32 and the
  /// preprobe targets coincide with the main targets (kRandom mode only).
  bool fold_preprobe = true;

  /// Discovery-optimized mode (§5.2): number of backward-only extra scans
  /// with shifted source ports after the main scan.
  int extra_scans = 0;

  /// §5.4's proposed refinement of the discovery-optimized mode: pick each
  /// extra scan's random starting TTL from [1, measured route length + 5]
  /// instead of [1, 32], so the walks land on the route (where the
  /// load-balanced sections are) instead of in the silent tail.
  bool extra_scan_length_heuristic = true;

  /// §5.4's other open question: have the extra scans vary the *destination
  /// address* within each /24 (instead of, or in addition to, the source
  /// port), hunting for per-address internal paths rather than per-flow
  /// load-balanced branches.  bench/sec54_future_work compares the options.
  bool extra_scan_vary_targets = false;

  /// Stop after the preprobing phase (and prediction); used by the distance-
  /// accuracy experiments of §3.3, which evaluate preprobing in isolation.
  bool preprobe_only = false;

  std::uint64_t seed = 7;
  /// Seed of the per-/24 random representative; shared across tools so
  /// comparisons probe identical targets.
  std::uint64_t target_seed = 42;

  bool collect_routes = true;
  bool collect_probe_log = false;

  /// Batched sending (sendmmsg-style): the main-phase loop gathers a block
  /// of due destinations from the DCB ring, template-encodes them into a
  /// reusable ProbeBatch, and submits them in one runtime call, draining
  /// responses at batch rather than destination granularity.  The runtime's
  /// batch_budget() bounds each batch so batched scans stay byte-identical
  /// to scalar same-seed scans; the engine falls back to scalar sending
  /// whenever a per-probe feature needs it (retransmission tracking, the
  /// probe log).  Off forces the scalar path everywhere.
  bool batch_probes = true;

  /// Per-stage cycle attribution (DESIGN.md §11); null = no attribution,
  /// one branch per batch.  Must outlive the scan.
  obs::CycleLedger* cycles = nullptr;

  /// Hitlist addresses per prefix offset (0 = no entry); required when
  /// preprobe == kHitlist.  Prefixes without entries fall back to the main
  /// target for preprobing.
  const std::vector<std::uint32_t>* hitlist = nullptr;

  /// Overrides the per-prefix probing target (0 entries fall back to the
  /// random target); used by the §5.1 hitlist-bias experiments.
  const std::vector<std::uint32_t>* target_override = nullptr;

  /// Operator-maintained opt-out list (ethics appendix): any /24 touching
  /// an excluded range is removed from the scan alongside the built-in
  /// private/multicast/reserved exclusions.
  const ExclusionList* exclusions = nullptr;

  // --- Resilience (DESIGN.md §9) -----------------------------------------
  // All off by default: a default-configured scan performs no retransmission
  // tracking, no rate adaptation, and no checkpointing, and its outputs are
  // byte-identical to builds that predate this layer.

  /// Retransmission budget per destination: a main-phase probe whose
  /// response has not arrived within `retransmit_timeout` is re-sent, at
  /// most this many times per /24 across the whole scan.  0 = the paper's
  /// one-probe-per-hop policy (no retransmission).
  std::uint8_t max_retransmits = 0;
  util::Nanos retransmit_timeout = 500 * util::kMillisecond;

  /// Adaptive rate backoff: when the fraction of main-phase probes timing
  /// out in a round exceeds `backoff_loss_threshold`, the probing rate is
  /// halved (down to probes_per_second / 2^max_backoff_level); it doubles
  /// back one step per round once the loss ratio falls below half the
  /// threshold.
  bool adaptive_backoff = false;
  double backoff_loss_threshold = 0.3;
  int max_backoff_level = 4;

  /// Checkpointing: at the first main-phase round barrier past each
  /// interval the engine quiesces (drains the retransmission wheel and
  /// in-flight responses) and hands a checkpoint to `checkpoint_sink`.
  /// The sink returning false aborts the scan — the hook tests use to kill
  /// a scan mid-sweep.  0 = no checkpointing.
  util::Nanos checkpoint_interval = 0;
  std::function<bool(const io::ScanCheckpoint&)> checkpoint_sink;

  /// Resume a scan from this checkpoint (must outlive run()).  The config
  /// must match the checkpointed scan's (checkpoint_digest()); preprobing
  /// is skipped — the checkpoint captured post-initialization state.
  const io::ScanCheckpoint* resume_from = nullptr;

  /// Cooperative cancellation (job-granular pause/stop for the svc layer):
  /// when set and the pointee becomes true, the scan stops at the next
  /// main-phase round barrier *without* checkpointing; run() returns the
  /// partial result and aborted() reports true.  Not part of
  /// checkpoint_digest(): cancellation is a control-plane input, not scan
  /// state.  Null = never cancelled.
  // fr-atomic: cancel flag — written by a controlling thread, polled
  // (relaxed) by the scan thread once per round at the barrier.
  const std::atomic<bool>* cancel = nullptr;

  /// Scan telemetry (DESIGN.md §7).  Default-disabled: every hook in the
  /// hot path is then a single branch, no atomics.  The registry, tracer
  /// and lane referenced here must outlive the scan.
  obs::ScanTelemetry telemetry;

  std::uint32_t num_prefixes() const noexcept {
    return std::uint32_t{1} << prefix_bits;
  }
};

class Tracer {
 public:
  Tracer(const TracerConfig& config, ScanRuntime& runtime);

  /// Runs the configured scan to completion and returns the results.
  [[nodiscard]] ScanResult run();

  /// The target address the engine probes for a /24 (random host octet
  /// unless overridden) — exposed for analyses that need it.
  std::uint32_t target_of(std::uint32_t prefix_offset) const noexcept;

  /// Digest of the resume-relevant config fields; a checkpoint resumes only
  /// into a tracer whose digest matches its config_digest.
  std::uint64_t checkpoint_digest() const noexcept;

  /// True when the last run() stopped early — the checkpoint sink returned
  /// false (preemption) or the cancel flag fired.  A completed scan (even a
  /// resumed one) reports false.
  bool aborted() const noexcept { return aborted_; }

 private:
  /// A main-phase probe awaiting its response on the retransmission wheel.
  struct Outstanding {
    std::uint32_t index;
    std::uint8_t ttl;
  };

  void preprobe_phase();
  void predict_distances();
  void apply_fold_predictions();
  void initialize_dcbs();
  FR_HOT void main_rounds(const ProbeCodec& codec, bool flag_first_round,
                          std::uint8_t hop_flags);
  void run_extra_scans();
  FR_HOT void send_probe(const ProbeCodec& codec, std::uint32_t index,
                         std::uint32_t destination, std::uint8_t ttl,
                         bool preprobe_flag);
  /// Template-encodes one probe into the batch buffer, stamped with the
  /// exact virtual instant a scalar loop would have used.
  FR_HOT void stage_probe(const ProbeCodec& codec, std::uint32_t destination,
                          std::uint8_t ttl, bool preprobe_flag);
  /// Submits the staged batch, tallies successes/failures from the result
  /// mask, replays the per-probe telemetry ticks, and drains responses.
  FR_HOT void flush_batch();
  FR_HOT void process_retransmits();
  FR_HOT void drain_wheel();
  FR_HOT bool resilience_enabled() const noexcept {
    return config_.max_retransmits > 0 || config_.adaptive_backoff;
  }
  void update_backoff();
  void maybe_checkpoint();
  void quiesce();
  io::ScanCheckpoint capture_checkpoint();
  void restore_checkpoint(const io::ScanCheckpoint& checkpoint);
  FR_HOT void on_packet(std::span<const std::byte> packet,
                        util::Nanos arrival);
  FR_HOT void handle_preprobe_response(std::uint32_t index,
                                       const net::ParsedResponse& parsed,
                                       const DecodedProbe& probe);
  FR_HOT void handle_main_response(std::uint32_t index,
                                   const net::ParsedResponse& parsed,
                                   const DecodedProbe& probe);
  FR_HOT void record_hop(std::uint32_t index, std::uint32_t ip,
                         std::uint8_t ttl, std::uint8_t flags);
  FR_HOT bool fold_mode() const noexcept;
  bool include_in_scan(std::uint32_t index) const;
  /// The full 32-bit address currently probed for a prefix offset: the /24
  /// prefix is the DCB array index, the packed DCB stores only the host
  /// octet (§3.4 at full scale).
  FR_HOT std::uint32_t destination_of(std::uint32_t index) const noexcept {
    return ((config_.first_prefix + index) << 8) |
           dcbs_[index].dest_octet();
  }

  TracerConfig config_;
  ScanRuntime& runtime_;
  ProbeCodec codec_;
  const ProbeCodec* active_codec_;
  DcbArray dcbs_;
  ScanResult result_;
  ScanRuntime::Sink sink_;
  std::uint8_t current_hop_flags_ = 0;
  std::uint64_t target_seed_;

  // --- Batched sending state ----------------------------------------------
  /// Reusable gather buffer for the batched main-phase sending loop.
  ProbeBatch batch_;
  /// Post-send telemetry tick instant per staged packet (what a scalar
  /// loop's runtime_.now() would have read after that send).
  std::array<util::Nanos, ProbeBatch::kMaxPackets> batch_ticks_{};
  /// Probe allowance of the current batch, from runtime_.batch_budget().
  std::uint32_t batch_budget_ = 1;
  /// True while main_rounds may gather (batch_probes on, no per-probe
  /// feature active).
  bool batch_mode_ = false;
  /// Cycle attribution: monotonic instant the current batch began
  /// gathering (kEncode spans gather start to submit).
  util::Nanos batch_gather_start_ = 0;
  util::MonotonicClock cycle_clock_;
  /// Bit per prefix offset: set = the operator exclusion list covers part of
  /// this /24.  Filled once per scan by the trie's bulk pass, so ring
  /// construction pays O(1) per prefix instead of a range query each.
  std::vector<std::uint64_t> excluded_bitmap_;

  // --- Resilience state (DESIGN.md §9) ------------------------------------
  /// Virtual-time deadlines of outstanding main-phase probes.
  util::TimingWheel<Outstanding> wheel_;
  /// Bit (ttl - 1) set = the probe at that TTL was answered; checked on
  /// wheel expiry, cleared on each (re)send.  Empty when resilience is off.
  std::vector<std::uint64_t> answered_mask_;
  /// Remaining retransmission budget per destination.
  std::vector<std::uint8_t> retransmit_left_;
  /// True while main_rounds runs the main phase with resilience on — the
  /// single branch the disabled hot path pays.
  bool retransmit_active_ = false;
  std::uint32_t backoff_level_ = 0;
  std::uint64_t round_probes_ = 0;
  std::uint64_t round_loss_events_ = 0;
  std::uint64_t rounds_completed_ = 0;
  util::Nanos scan_start_ = 0;
  /// Scan time accumulated by the run(s) before a resume.
  util::Nanos resume_elapsed_base_ = 0;
  util::Nanos next_checkpoint_ = 0;
  /// Set when checkpoint_sink returns false: the scan stops at the barrier.
  bool aborted_ = false;
};

}  // namespace flashroute::core
