// FlashRoute's stateless probe encoding (§3.1).
//
// Everything needed to interpret a response is carried inside the probe
// itself and echoed back in the ICMP quote:
//
//   IPID (16 bits):  [ 5 bits initial TTL-1 | 1 bit preprobe | 10 bits
//                      timestamp-ms (low) ]
//   UDP length:      8 (header) + payload, where payload carries the 6 high
//                    bits of the timestamp → 16-bit millisecond timestamp,
//                    wrapping in 65.536 s — "less than the official maximum
//                    segment lifetime but more than enough to derive the
//                    round-trip time" (§3.1)
//   UDP src port:    Internet checksum of the destination address, so a
//                    response whose quoted source port mismatches its quoted
//                    destination reveals in-flight address rewriting (§5.3)
//   UDP dst port:    33434 (+ a per-scan offset in discovery-optimized mode,
//                    which changes the flow label per extra scan, §5.2)
//
// The Yarrp baseline's Paris-TCP-ACK probes are also crafted here: they keep
// the checksum-as-source-port flow discipline and carry the elapsed time in
// the TCP sequence number, as Yarrp does.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.h"
#include "net/icmp.h"
#include "net/ipv4.h"
#include "util/annotations.h"
#include "util/clock.h"

namespace flashroute::core {

/// Decoded view of the probe a response quotes.
struct DecodedProbe {
  net::Ipv4Address destination;  // quoted destination (post any rewriting)
  std::uint8_t initial_ttl = 0;
  bool preprobe = false;
  std::uint16_t timestamp_ms = 0;  // 16-bit wrapping milliseconds
  std::uint8_t residual_ttl = 0;   // TTL the probe had at the responder
  bool source_port_matches = false;  // checksum(dst) == quoted src port?
};

class ProbeCodec {
 public:
  /// `source` is the vantage address placed in every probe;
  /// `port_offset` shifts the source port in discovery-optimized extra scans
  /// (P' = P + i, §5.2) so per-flow load balancers pick different branches.
  ///
  /// Construction precomputes one serialized header template per protocol
  /// (all constant fields filled in, variable fields zeroed, IPv4 checksum
  /// computed once); encode_udp/encode_tcp then memcpy the template and
  /// patch only dst/TTL/IPID/src-port/length, folding the checksum with an
  /// RFC 1624 incremental update instead of re-summing the header — the
  /// technique Yarrp uses to sustain 100+ Kpps.
  explicit ProbeCodec(net::Ipv4Address source,
                      std::uint16_t port_offset = 0) noexcept;

  /// Crafts a FlashRoute UDP probe into `buffer`; returns the packet size.
  /// `buffer` must hold at least kMaxProbeSize bytes.
  [[nodiscard]] FR_HOT std::size_t encode_udp(net::Ipv4Address destination, std::uint8_t ttl,
                         bool preprobe, util::Nanos send_time,
                         std::span<std::byte> buffer) const noexcept;

  /// Crafts a Yarrp-style Paris-TCP-ACK probe.
  [[nodiscard]] FR_HOT std::size_t encode_tcp(net::Ipv4Address destination, std::uint8_t ttl,
                         util::Nanos send_time,
                         std::span<std::byte> buffer) const noexcept;

  /// Decodes the quoted probe of an ICMP response.  Returns nullopt when
  /// the quote is not one of our probes (wrong destination port family).
  [[nodiscard]] FR_HOT std::optional<DecodedProbe> decode(const net::ParsedResponse& response)
      const noexcept;

  /// Round-trip time implied by a decoded probe and its arrival instant,
  /// correcting for the 16-bit timestamp wraparound.
  [[nodiscard]] FR_HOT static util::Nanos rtt(const DecodedProbe& probe,
                         util::Nanos arrival) noexcept;

  /// Receive-path classifier for sharded runtimes: the /24 prefix index of
  /// the destination the response's quoted probe was aimed at, extracted
  /// with fixed-offset reads instead of a full parse — this runs on the
  /// single receiver thread for every arriving packet, so it must stay far
  /// cheaper than decode().  Returns nullopt for anything that is not an
  /// ICMP time-exceeded/unreachable quoting one of our UDP probes (notably
  /// TCP RSTs, which carry no quote to classify by).
  [[nodiscard]] FR_HOT static std::optional<std::uint32_t> classify_prefix24(
      std::span<const std::byte> packet) noexcept;

  std::uint16_t port_offset() const noexcept { return port_offset_; }

  /// Probe sizes: IP + UDP + up to 63 timestamp-encoding payload bytes.
  static constexpr std::size_t kMaxProbeSize =
      net::Ipv4Header::kSize + net::UdpHeader::kSize + 63;
  static constexpr std::size_t kTcpProbeSize =
      net::Ipv4Header::kSize + net::TcpHeader::kSize;

 private:
  FR_HOT static std::uint16_t timestamp_ms16(util::Nanos t) noexcept {
    return static_cast<std::uint16_t>((t / util::kMillisecond) & 0xFFFF);
  }

  net::Ipv4Address source_;
  std::uint16_t port_offset_;

  /// Precomputed probe templates (variable fields zeroed) and the IPv4
  /// checksum of each template header, the starting point of the per-probe
  /// incremental update.  The UDP template's payload region is all zeros, so
  /// one memcpy of `header + payload` bytes yields the finished packet body.
  std::array<std::byte, kMaxProbeSize> udp_template_{};
  std::array<std::byte, kTcpProbeSize> tcp_template_{};
  std::uint16_t udp_template_checksum_ = 0;
  std::uint16_t tcp_template_checksum_ = 0;
};

}  // namespace flashroute::core
