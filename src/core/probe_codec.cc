#include "core/probe_codec.h"

#include "net/checksum.h"
#include "net/packet.h"

namespace flashroute::core {

namespace {

// IPID bit layout: [ttl-1 : 5][preprobe : 1][timestamp low bits : 10].
constexpr std::uint16_t pack_ipid(std::uint8_t ttl, bool preprobe,
                                  std::uint16_t ts_ms) noexcept {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>((ttl - 1) & 0x1F) << 11) |
      (static_cast<std::uint16_t>(preprobe ? 1 : 0) << 10) |
      (ts_ms & 0x03FF));
}

}  // namespace

std::size_t ProbeCodec::encode_udp(net::Ipv4Address destination,
                                   std::uint8_t ttl, bool preprobe,
                                   util::Nanos send_time,
                                   std::span<std::byte> buffer) const noexcept {
  const std::uint16_t ts = timestamp_ms16(send_time);
  // The 6 high timestamp bits ride in the payload length (§3.1) — unlike
  // Yarrp's UDP mode, which tries to fit the whole elapsed time there and
  // overruns the maximum packet size (§4.2.1 footnote).
  const std::size_t payload = (ts >> 10) & 0x3F;
  const std::size_t total =
      net::Ipv4Header::kSize + net::UdpHeader::kSize + payload;
  if (buffer.size() < total) return 0;

  net::ByteWriter writer(buffer.first(total));
  net::Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(total);
  ip.id = pack_ipid(ttl, preprobe, ts);
  ip.ttl = ttl;
  ip.protocol = net::kProtoUdp;
  ip.src = source_;
  ip.dst = destination;
  if (!ip.serialize(writer)) return 0;

  net::UdpHeader udp;
  udp.src_port = static_cast<std::uint16_t>(
      net::address_checksum(destination) + port_offset_);
  udp.dst_port = net::kTracerouteDstPort;
  udp.length = static_cast<std::uint16_t>(net::UdpHeader::kSize + payload);
  if (!udp.serialize(writer)) return 0;
  writer.put_zeros(payload);
  return writer.ok() ? total : 0;
}

std::size_t ProbeCodec::encode_tcp(net::Ipv4Address destination,
                                   std::uint8_t ttl, util::Nanos send_time,
                                   std::span<std::byte> buffer) const noexcept {
  if (buffer.size() < kTcpProbeSize) return 0;
  net::ByteWriter writer(buffer.first(kTcpProbeSize));

  net::Ipv4Header ip;
  ip.total_length = kTcpProbeSize;
  ip.id = pack_ipid(ttl, false, timestamp_ms16(send_time));
  ip.ttl = ttl;
  ip.protocol = net::kProtoTcp;
  ip.src = source_;
  ip.dst = destination;
  if (!ip.serialize(writer)) return 0;

  net::TcpHeader tcp;
  tcp.src_port = static_cast<std::uint16_t>(
      net::address_checksum(destination) + port_offset_);
  tcp.dst_port = 80;
  // Yarrp encodes the elapsed time into the sequence number of its TCP-ACK
  // probes; millisecond granularity is plenty for RTT purposes.
  tcp.seq = static_cast<std::uint32_t>(send_time / util::kMillisecond);
  tcp.ack = 0;
  tcp.flags = net::TcpHeader::kFlagAck;
  tcp.window = 65535;
  if (!tcp.serialize(writer)) return 0;
  return kTcpProbeSize;
}

std::optional<DecodedProbe> ProbeCodec::decode(
    const net::ParsedResponse& response) const noexcept {
  if (!response.is_icmp) return std::nullopt;

  DecodedProbe probe;
  probe.destination = response.inner.dst;
  probe.residual_ttl = response.inner.ttl;
  probe.initial_ttl =
      static_cast<std::uint8_t>(((response.inner.id >> 11) & 0x1F) + 1);
  probe.preprobe = ((response.inner.id >> 10) & 1) != 0;

  const std::uint16_t ts_low = response.inner.id & 0x03FF;
  std::uint16_t ts_high = 0;
  if (response.inner.protocol == net::kProtoUdp) {
    if (response.inner_udp_length < net::UdpHeader::kSize) return std::nullopt;
    ts_high = static_cast<std::uint16_t>(
        (response.inner_udp_length - net::UdpHeader::kSize) & 0x3F);
  }
  probe.timestamp_ms = static_cast<std::uint16_t>((ts_high << 10) | ts_low);

  const std::uint16_t expected = static_cast<std::uint16_t>(
      net::address_checksum(response.inner.dst) + port_offset_);
  probe.source_port_matches = response.inner_src_port == expected;
  return probe;
}

std::optional<std::uint32_t> ProbeCodec::classify_prefix24(
    std::span<const std::byte> packet) noexcept {
  const auto byte_at = [&](std::size_t i) {
    return static_cast<std::uint8_t>(packet[i]);
  };
  // Outer IPv4 header: version 4, honor IHL, protocol ICMP.
  if (packet.size() < net::Ipv4Header::kSize) return std::nullopt;
  if ((byte_at(0) >> 4) != 4) return std::nullopt;
  const std::size_t outer_ihl = static_cast<std::size_t>(byte_at(0) & 0x0F) * 4;
  if (outer_ihl < net::Ipv4Header::kSize) return std::nullopt;
  if (byte_at(9) != net::kProtoIcmp) return std::nullopt;

  // ICMP header: only the two traceroute response types quote a probe.
  const std::size_t icmp = outer_ihl;
  if (packet.size() < icmp + net::IcmpHeader::kSize) return std::nullopt;
  const std::uint8_t type = byte_at(icmp);
  if (type != net::kIcmpTimeExceeded && type != net::kIcmpDestUnreachable) {
    return std::nullopt;
  }

  // Quoted probe header: IPv4 over UDP; its destination names the /24.
  const std::size_t inner = icmp + net::IcmpHeader::kSize;
  if (packet.size() < inner + net::Ipv4Header::kSize) return std::nullopt;
  if ((byte_at(inner) >> 4) != 4) return std::nullopt;
  if (byte_at(inner + 9) != net::kProtoUdp) return std::nullopt;
  const std::uint32_t dst = (static_cast<std::uint32_t>(byte_at(inner + 16))
                             << 24) |
                            (static_cast<std::uint32_t>(byte_at(inner + 17))
                             << 16) |
                            (static_cast<std::uint32_t>(byte_at(inner + 18))
                             << 8) |
                            static_cast<std::uint32_t>(byte_at(inner + 19));
  return dst >> 8;
}

util::Nanos ProbeCodec::rtt(const DecodedProbe& probe,
                            util::Nanos arrival) noexcept {
  const std::uint16_t arrival_ms =
      static_cast<std::uint16_t>((arrival / util::kMillisecond) & 0xFFFF);
  const std::uint16_t delta =
      static_cast<std::uint16_t>(arrival_ms - probe.timestamp_ms);
  return static_cast<util::Nanos>(delta) * util::kMillisecond;
}

}  // namespace flashroute::core
