#include "core/probe_codec.h"

#include <cstring>

#include "net/checksum.h"
#include "net/packet.h"

namespace flashroute::core {

namespace {

// IPID bit layout: [ttl-1 : 5][preprobe : 1][timestamp low bits : 10].
FR_HOT constexpr std::uint16_t pack_ipid(std::uint8_t ttl, bool preprobe,
                                  std::uint16_t ts_ms) noexcept {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>((ttl - 1) & 0x1F) << 11) |
      (static_cast<std::uint16_t>(preprobe ? 1 : 0) << 10) |
      (ts_ms & 0x03FF));
}

// Offsets of the fields encode_udp/encode_tcp patch into the templates.
constexpr std::size_t kIpTotalLength = 2;
constexpr std::size_t kIpId = 4;
constexpr std::size_t kIpTtlWord = 8;  // [ TTL | protocol ]
constexpr std::size_t kIpChecksum = 10;
constexpr std::size_t kIpDst = 16;
constexpr std::size_t kL4SrcPort = net::Ipv4Header::kSize;      // UDP & TCP
constexpr std::size_t kUdpLength = net::Ipv4Header::kSize + 4;
constexpr std::size_t kTcpSeq = net::Ipv4Header::kSize + 4;

std::uint16_t read_u16(std::span<const std::byte> buffer,
                       std::size_t offset) noexcept {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(buffer[offset]) << 8 |
      static_cast<std::uint16_t>(buffer[offset + 1]));
}

FR_HOT void patch_u16(std::span<std::byte> buffer, std::size_t offset,
               std::uint16_t v) noexcept {
  buffer[offset] = std::byte(v >> 8);
  buffer[offset + 1] = std::byte(v & 0xFF);
}

FR_HOT void patch_u32(std::span<std::byte> buffer, std::size_t offset,
               std::uint32_t v) noexcept {
  patch_u16(buffer, offset, static_cast<std::uint16_t>(v >> 16));
  patch_u16(buffer, offset + 2, static_cast<std::uint16_t>(v & 0xFFFF));
}

}  // namespace

ProbeCodec::ProbeCodec(net::Ipv4Address source,
                       std::uint16_t port_offset) noexcept
    : source_(source), port_offset_(port_offset) {
  // UDP template: zero-payload probe with dst/TTL/IPID/src-port zeroed.
  // The template checksum seeds the per-probe RFC 1624 update chain.
  {
    net::ByteWriter writer(udp_template_);
    net::Ipv4Header ip;
    ip.total_length = net::Ipv4Header::kSize + net::UdpHeader::kSize;
    ip.protocol = net::kProtoUdp;
    ip.src = source_;
    net::UdpHeader udp;
    udp.dst_port = net::kTracerouteDstPort;
    udp.length = net::UdpHeader::kSize;
    ip.serialize(writer);
    udp.serialize(writer);
    udp_template_checksum_ = read_u16(udp_template_, kIpChecksum);
  }
  // TCP template: Paris-TCP-ACK probe with dst/TTL/IPID/src-port/seq zeroed.
  {
    net::ByteWriter writer(tcp_template_);
    net::Ipv4Header ip;
    ip.total_length = kTcpProbeSize;
    ip.protocol = net::kProtoTcp;
    ip.src = source_;
    net::TcpHeader tcp;
    tcp.dst_port = 80;
    tcp.flags = net::TcpHeader::kFlagAck;
    tcp.window = 65535;
    ip.serialize(writer);
    tcp.serialize(writer);
    tcp_template_checksum_ = read_u16(tcp_template_, kIpChecksum);
  }
}

FR_HOT std::size_t ProbeCodec::encode_udp(net::Ipv4Address destination,
                                   std::uint8_t ttl, bool preprobe,
                                   util::Nanos send_time,
                                   std::span<std::byte> buffer) const noexcept {
  const std::uint16_t ts = timestamp_ms16(send_time);
  // The 6 high timestamp bits ride in the payload length (§3.1) — unlike
  // Yarrp's UDP mode, which tries to fit the whole elapsed time there and
  // overruns the maximum packet size (§4.2.1 footnote).
  const std::size_t payload = (ts >> 10) & 0x3F;
  const std::size_t total =
      net::Ipv4Header::kSize + net::UdpHeader::kSize + payload;
  if (buffer.size() < total) return 0;

  // Fixed-size header copy (compiles to two vector moves) plus a zero fill
  // of the short payload; only five header fields remain to patch.
  constexpr std::size_t kHeaderBytes =
      net::Ipv4Header::kSize + net::UdpHeader::kSize;
  std::memcpy(buffer.data(), udp_template_.data(), kHeaderBytes);
  std::memset(buffer.data() + kHeaderBytes, 0, payload);
  const auto total_length = static_cast<std::uint16_t>(total);
  const std::uint16_t id = pack_ipid(ttl, preprobe, ts);
  const auto ttl_word =
      static_cast<std::uint16_t>(std::uint16_t{ttl} << 8 | net::kProtoUdp);
  const std::uint32_t dst = destination.value();
  patch_u16(buffer, kIpTotalLength, total_length);
  patch_u16(buffer, kIpId, id);
  patch_u16(buffer, kIpTtlWord, ttl_word);
  patch_u32(buffer, kIpDst, dst);
  patch_u16(buffer, kL4SrcPort,
            static_cast<std::uint16_t>(net::address_checksum(destination) +
                                       port_offset_));
  patch_u16(buffer, kUdpLength,
            static_cast<std::uint16_t>(net::UdpHeader::kSize + payload));

  std::uint16_t checksum = net::incremental_checksum_update(
      udp_template_checksum_,
      static_cast<std::uint16_t>(net::Ipv4Header::kSize +
                                 net::UdpHeader::kSize),
      total_length);
  checksum = net::incremental_checksum_update(checksum, 0, id);
  checksum =
      net::incremental_checksum_update(checksum, net::kProtoUdp, ttl_word);
  checksum = net::incremental_checksum_update(
      checksum, 0, static_cast<std::uint16_t>(dst >> 16));
  checksum = net::incremental_checksum_update(
      checksum, 0, static_cast<std::uint16_t>(dst & 0xFFFF));
  patch_u16(buffer, kIpChecksum, checksum);
  return total;
}

FR_HOT std::size_t ProbeCodec::encode_tcp(net::Ipv4Address destination,
                                   std::uint8_t ttl, util::Nanos send_time,
                                   std::span<std::byte> buffer) const noexcept {
  if (buffer.size() < kTcpProbeSize) return 0;
  std::memcpy(buffer.data(), tcp_template_.data(), kTcpProbeSize);

  const std::uint16_t id = pack_ipid(ttl, false, timestamp_ms16(send_time));
  const auto ttl_word =
      static_cast<std::uint16_t>(std::uint16_t{ttl} << 8 | net::kProtoTcp);
  const std::uint32_t dst = destination.value();
  patch_u16(buffer, kIpId, id);
  patch_u16(buffer, kIpTtlWord, ttl_word);
  patch_u32(buffer, kIpDst, dst);
  patch_u16(buffer, kL4SrcPort,
            static_cast<std::uint16_t>(net::address_checksum(destination) +
                                       port_offset_));
  // Yarrp encodes the elapsed time into the sequence number of its TCP-ACK
  // probes; millisecond granularity is plenty for RTT purposes.
  patch_u32(buffer, kTcpSeq,
            static_cast<std::uint32_t>(send_time / util::kMillisecond));

  std::uint16_t checksum =
      net::incremental_checksum_update(tcp_template_checksum_, 0, id);
  checksum =
      net::incremental_checksum_update(checksum, net::kProtoTcp, ttl_word);
  checksum = net::incremental_checksum_update(
      checksum, 0, static_cast<std::uint16_t>(dst >> 16));
  checksum = net::incremental_checksum_update(
      checksum, 0, static_cast<std::uint16_t>(dst & 0xFFFF));
  patch_u16(buffer, kIpChecksum, checksum);
  return kTcpProbeSize;
}

FR_HOT std::optional<DecodedProbe> ProbeCodec::decode(
    const net::ParsedResponse& response) const noexcept {
  if (!response.is_icmp) return std::nullopt;

  DecodedProbe probe;
  probe.destination = response.inner.dst;
  probe.residual_ttl = response.inner.ttl;
  probe.initial_ttl =
      static_cast<std::uint8_t>(((response.inner.id >> 11) & 0x1F) + 1);
  probe.preprobe = ((response.inner.id >> 10) & 1) != 0;

  const std::uint16_t ts_low = response.inner.id & 0x03FF;
  std::uint16_t ts_high = 0;
  if (response.inner.protocol == net::kProtoUdp) {
    if (response.inner_udp_length < net::UdpHeader::kSize) return std::nullopt;
    ts_high = static_cast<std::uint16_t>(
        (response.inner_udp_length - net::UdpHeader::kSize) & 0x3F);
  }
  probe.timestamp_ms = static_cast<std::uint16_t>((ts_high << 10) | ts_low);

  const std::uint16_t expected = static_cast<std::uint16_t>(
      net::address_checksum(response.inner.dst) + port_offset_);
  probe.source_port_matches = response.inner_src_port == expected;
  return probe;
}

FR_HOT std::optional<std::uint32_t> ProbeCodec::classify_prefix24(
    std::span<const std::byte> packet) noexcept {
  const auto byte_at = [&](std::size_t i) {
    return static_cast<std::uint8_t>(packet[i]);
  };
  // Outer IPv4 header: version 4, honor IHL, protocol ICMP.
  if (packet.size() < net::Ipv4Header::kSize) return std::nullopt;
  if ((byte_at(0) >> 4) != 4) return std::nullopt;
  const std::size_t outer_ihl = static_cast<std::size_t>(byte_at(0) & 0x0F) * 4;
  if (outer_ihl < net::Ipv4Header::kSize) return std::nullopt;
  if (byte_at(9) != net::kProtoIcmp) return std::nullopt;

  // ICMP header: only the two traceroute response types quote a probe.
  const std::size_t icmp = outer_ihl;
  if (packet.size() < icmp + net::IcmpHeader::kSize) return std::nullopt;
  const std::uint8_t type = byte_at(icmp);
  if (type != net::kIcmpTimeExceeded && type != net::kIcmpDestUnreachable) {
    return std::nullopt;
  }

  // Quoted probe header: IPv4 over UDP; its destination names the /24.
  const std::size_t inner = icmp + net::IcmpHeader::kSize;
  if (packet.size() < inner + net::Ipv4Header::kSize) return std::nullopt;
  if ((byte_at(inner) >> 4) != 4) return std::nullopt;
  if (byte_at(inner + 9) != net::kProtoUdp) return std::nullopt;
  const std::uint32_t dst = (static_cast<std::uint32_t>(byte_at(inner + 16))
                             << 24) |
                            (static_cast<std::uint32_t>(byte_at(inner + 17))
                             << 16) |
                            (static_cast<std::uint32_t>(byte_at(inner + 18))
                             << 8) |
                            static_cast<std::uint32_t>(byte_at(inner + 19));
  return dst >> 8;
}

FR_HOT util::Nanos ProbeCodec::rtt(const DecodedProbe& probe,
                            util::Nanos arrival) noexcept {
  const std::uint16_t arrival_ms =
      static_cast<std::uint16_t>((arrival / util::kMillisecond) & 0xFFFF);
  const std::uint16_t delta =
      static_cast<std::uint16_t>(arrival_ms - probe.timestamp_ms);
  return static_cast<util::Nanos>(delta) * util::kMillisecond;
}

}  // namespace flashroute::core
