#include "net/icmp.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "net/checksum.h"
#include "net/packet.h"

namespace flashroute::net {

namespace {

/// Quote length per RFC 792: inner IP header + 8 bytes of its payload
/// (fewer if the probe itself was shorter, which never happens for our
/// probes but is handled defensively).
FR_HOT std::size_t quote_length(std::span<const std::byte> probe) noexcept {
  return std::min<std::size_t>(probe.size(), Ipv4Header::kSize + 8);
}

}  // namespace

FR_HOT std::size_t craft_icmp_response_into(
    std::uint8_t icmp_type, std::uint8_t icmp_code, Ipv4Address responder,
    std::span<const std::byte> probe_packet, std::uint8_t residual_ttl,
    std::span<std::byte> out,
    std::optional<Ipv4Address> rewritten_destination) noexcept {
  ByteReader probe_reader(probe_packet);
  const auto inner = Ipv4Header::parse(probe_reader);
  if (!inner) return 0;

  // Copy the quoted portion of the probe and patch its TTL to the residual
  // value it carried when it reached the responder.  Routers rewrite the IP
  // checksum as they decrement the TTL, so we recompute it for realism.
  std::array<std::byte, Ipv4Header::kSize + 8> quote{};
  const std::size_t quoted = quote_length(probe_packet);
  if (quoted < Ipv4Header::kSize) return 0;
  std::memcpy(quote.data(), probe_packet.data(), quoted);
  if (rewritten_destination) {
    const std::uint32_t v = rewritten_destination->value();
    quote[16] = std::byte(v >> 24);
    quote[17] = std::byte((v >> 16) & 0xFF);
    quote[18] = std::byte((v >> 8) & 0xFF);
    quote[19] = std::byte(v & 0xFF);
  }
  quote[8] = std::byte{residual_ttl};
  quote[10] = std::byte{0};
  quote[11] = std::byte{0};
  const std::uint16_t inner_checksum = internet_checksum(
      std::span<const std::byte>(quote.data(), Ipv4Header::kSize));
  quote[10] = std::byte(inner_checksum >> 8);
  quote[11] = std::byte(inner_checksum & 0xFF);

  const std::size_t icmp_len = IcmpHeader::kSize + quoted;
  const std::size_t total = Ipv4Header::kSize + icmp_len;
  if (out.size() < total) return 0;
  ByteWriter writer(out.first(total));

  Ipv4Header outer;
  outer.total_length = static_cast<std::uint16_t>(total);
  outer.ttl = 64;
  outer.protocol = kProtoIcmp;
  outer.src = responder;
  outer.dst = inner->src;
  if (!outer.serialize(writer)) return 0;

  IcmpHeader icmp;
  icmp.type = icmp_type;
  icmp.code = icmp_code;
  if (!icmp.serialize(writer)) return 0;
  writer.put_bytes(std::span<const std::byte>(quote.data(), quoted));
  if (!writer.ok()) return 0;

  // Patch the ICMP checksum (covers the ICMP header and the quote).
  const std::uint16_t icmp_checksum = internet_checksum(
      std::span<const std::byte>(out.data() + Ipv4Header::kSize, icmp_len));
  out[Ipv4Header::kSize + 2] = std::byte(icmp_checksum >> 8);
  out[Ipv4Header::kSize + 3] = std::byte(icmp_checksum & 0xFF);
  return total;
}

FR_HOT std::size_t craft_tcp_rst_into(std::span<const std::byte> probe_packet,
                               std::span<std::byte> out) noexcept {
  ByteReader reader(probe_packet);
  const auto probe_ip = Ipv4Header::parse(reader);
  if (!probe_ip || probe_ip->protocol != kProtoTcp) return 0;
  const auto probe_tcp = TcpHeader::parse(reader);
  if (!probe_tcp) return 0;

  constexpr std::size_t total = Ipv4Header::kSize + TcpHeader::kSize;
  if (out.size() < total) return 0;
  ByteWriter writer(out.first(total));

  Ipv4Header outer;
  outer.total_length = static_cast<std::uint16_t>(total);
  outer.ttl = 64;
  outer.protocol = kProtoTcp;
  outer.src = probe_ip->dst;
  outer.dst = probe_ip->src;
  if (!outer.serialize(writer)) return 0;

  TcpHeader rst;
  rst.src_port = probe_tcp->dst_port;
  rst.dst_port = probe_tcp->src_port;
  rst.seq = probe_tcp->ack;  // RFC 793: RST to an ACK carries SEG.ACK as seq
  rst.flags = TcpHeader::kFlagRst;
  if (!rst.serialize(writer)) return 0;
  return total;
}

std::optional<std::vector<std::byte>> craft_icmp_response(
    std::uint8_t icmp_type, std::uint8_t icmp_code, Ipv4Address responder,
    std::span<const std::byte> probe_packet, std::uint8_t residual_ttl,
    std::optional<Ipv4Address> rewritten_destination) {
  std::vector<std::byte> packet(kMaxResponseSize);
  const std::size_t size =
      craft_icmp_response_into(icmp_type, icmp_code, responder, probe_packet,
                               residual_ttl, packet, rewritten_destination);
  if (size == 0) return std::nullopt;
  packet.resize(size);
  return packet;
}

std::optional<std::vector<std::byte>> craft_tcp_rst(
    std::span<const std::byte> probe_packet) {
  std::vector<std::byte> packet(Ipv4Header::kSize + TcpHeader::kSize);
  const std::size_t size = craft_tcp_rst_into(probe_packet, packet);
  if (size == 0) return std::nullopt;
  packet.resize(size);
  return packet;
}

FR_HOT std::optional<ParsedResponse> parse_response(
    std::span<const std::byte> packet) {
  ByteReader reader(packet);
  const auto outer = Ipv4Header::parse(reader);
  if (!outer) return std::nullopt;

  ParsedResponse response;
  response.responder = outer->src;
  response.outer_ttl = outer->ttl;

  if (outer->protocol == kProtoTcp) {
    const auto tcp = TcpHeader::parse(reader);
    if (!tcp || (tcp->flags & TcpHeader::kFlagRst) == 0) return std::nullopt;
    response.is_tcp_rst = true;
    response.tcp_src_port = tcp->src_port;
    response.tcp_dst_port = tcp->dst_port;
    response.tcp_seq = tcp->seq;
    return response;
  }

  if (outer->protocol != kProtoIcmp) return std::nullopt;
  const auto icmp = IcmpHeader::parse(reader);
  if (!icmp) return std::nullopt;
  if (icmp->type != kIcmpTimeExceeded && icmp->type != kIcmpDestUnreachable) {
    return std::nullopt;
  }
  response.is_icmp = true;
  response.icmp_type = icmp->type;
  response.icmp_code = icmp->code;

  const auto inner = Ipv4Header::parse(reader);
  if (!inner) return std::nullopt;
  response.inner = *inner;

  if (inner->protocol == kProtoUdp) {
    const auto udp = UdpHeader::parse(reader);
    if (!udp) return std::nullopt;
    response.inner_src_port = udp->src_port;
    response.inner_dst_port = udp->dst_port;
    response.inner_udp_length = udp->length;
  } else if (inner->protocol == kProtoTcp) {
    // Only 8 quoted bytes are guaranteed: ports + sequence number.
    response.inner_src_port = reader.get_u16();
    response.inner_dst_port = reader.get_u16();
    response.inner_tcp_seq = reader.get_u32();
    if (!reader.ok()) return std::nullopt;
  } else {
    return std::nullopt;
  }
  return response;
}

}  // namespace flashroute::net
