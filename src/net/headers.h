// IPv4 / UDP / TCP / ICMP header serialization and parsing.
//
// Probes and responses in this repository travel as real header bytes, both
// through the Internet simulator and through the optional raw-socket
// transport.  The probe-encoding scheme of §3.1 (TTL and timestamp bits in
// the IPID field, timestamp bits in the UDP length, destination checksum as
// the source port) is therefore executed against the same wire format a real
// deployment would use.

#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/ipv4.h"
#include "net/packet.h"
#include "util/annotations.h"

namespace flashroute::net {

// IP protocol numbers.
inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

// ICMP types/codes used by traceroute.
inline constexpr std::uint8_t kIcmpDestUnreachable = 3;
inline constexpr std::uint8_t kIcmpCodeNetUnreachable = 0;
inline constexpr std::uint8_t kIcmpCodeHostUnreachable = 1;
inline constexpr std::uint8_t kIcmpCodeProtoUnreachable = 2;
inline constexpr std::uint8_t kIcmpCodePortUnreachable = 3;
inline constexpr std::uint8_t kIcmpTimeExceeded = 11;
inline constexpr std::uint8_t kIcmpCodeTtlExceeded = 0;

/// The traceroute destination port: probes aimed at it elicit ICMP
/// port-unreachable from hosts (§3.3.1).
inline constexpr std::uint16_t kTracerouteDstPort = 33434;

/// IPv4 header (fixed 20 bytes; we never emit options).
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t id = 0;            // the IPID field FlashRoute encodes into
  std::uint16_t flags_fragment = 0;
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;
  Ipv4Address src;
  Ipv4Address dst;

  /// Serializes 20 bytes, computing the header checksum.
  /// Returns false if the buffer is too small.
  FR_HOT bool serialize(ByteWriter& w) const noexcept;

  /// Parses 20(+options) bytes; consumes the full IHL.  Does not verify the
  /// checksum (receivers that care call verify_checksum on the raw bytes).
  [[nodiscard]] FR_HOT static std::optional<Ipv4Header> parse(ByteReader& r) noexcept;
};

/// UDP header (8 bytes).  `length` covers header + payload; FlashRoute
/// encodes 6 bits of the probe timestamp in the payload size (§3.1).
struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  FR_HOT bool serialize(ByteWriter& w) const noexcept;
  [[nodiscard]] FR_HOT static std::optional<UdpHeader> parse(ByteReader& r) noexcept;
};

/// TCP header (fixed 20 bytes, no options) — used by the Yarrp baseline's
/// Paris-TCP-ACK probes, which encode the elapsed time in the sequence
/// number field (§3.1).
struct TcpHeader {
  static constexpr std::size_t kSize = 20;

  static constexpr std::uint8_t kFlagRst = 0x04;
  static constexpr std::uint8_t kFlagAck = 0x10;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;

  FR_HOT bool serialize(ByteWriter& w) const noexcept;
  [[nodiscard]] FR_HOT static std::optional<TcpHeader> parse(ByteReader& r) noexcept;
};

/// ICMP header (8 bytes; the 4 "rest of header" bytes are unused by the
/// types we emit).
struct IcmpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest = 0;

  FR_HOT bool serialize(ByteWriter& w) const noexcept;
  [[nodiscard]] FR_HOT static std::optional<IcmpHeader> parse(ByteReader& r) noexcept;
};

/// Recomputes and verifies the IPv4 header checksum over raw bytes
/// (`bytes` must start at the IP header and contain at least IHL*4 bytes).
FR_HOT bool verify_ipv4_checksum(std::span<const std::byte> bytes) noexcept;

}  // namespace flashroute::net
