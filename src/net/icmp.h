// Crafting and parsing of the response packets a traceroute scan receives:
// ICMP time-exceeded / destination-unreachable messages quoting the probe
// (RFC 792: inner IP header + first 8 payload bytes), and the TCP RST a
// destination returns to a Paris-TCP-ACK probe (the Yarrp default, §4.2.1).
//
// The simulator crafts these bytes exactly as a real router would — with the
// quoted probe header carrying the *residual* TTL the packet had when it
// arrived at the responder, which is what FlashRoute's one-probe distance
// measurement reads (§3.3.1) — and the probing engines decode from the same
// bytes.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.h"
#include "net/ipv4.h"
#include "util/annotations.h"

namespace flashroute::net {

/// Largest response we ever craft: outer IP + ICMP + quoted IP + 8 bytes.
inline constexpr std::size_t kMaxResponseSize =
    Ipv4Header::kSize + IcmpHeader::kSize + Ipv4Header::kSize + 8;

/// Builds an ICMP message from `responder` to the probe's source, quoting the
/// probe packet with its TTL patched to `residual_ttl` (and the quoted IP
/// checksum recomputed, as routers rewrite it at each decrement).
///
/// `probe_packet` must be a full IPv4 probe as produced by the probing
/// engines.  Encodes into `out` (which must hold at least kMaxResponseSize
/// bytes) and returns the packet size, or 0 if the probe bytes are malformed
/// or `out` is too small.  This is the simulator's hot path: it never
/// allocates — callers hand in a recycled pool slot (sim/response_pool.h).
///
/// When `rewritten_destination` is set, the quoted header's destination is
/// replaced with it — this is what a response looks like after an in-flight
/// destination-rewriting middlebox (§5.3), and it is how FlashRoute detects
/// the rewrite: the quoted source port no longer matches the checksum of the
/// quoted destination.
[[nodiscard]] FR_HOT std::size_t craft_icmp_response_into(
    std::uint8_t icmp_type, std::uint8_t icmp_code, Ipv4Address responder,
    std::span<const std::byte> probe_packet, std::uint8_t residual_ttl,
    std::span<std::byte> out,
    std::optional<Ipv4Address> rewritten_destination = std::nullopt) noexcept;

/// Builds the TCP RST a destination host sends in reply to an unsolicited
/// TCP-ACK probe.  Ports are swapped relative to the probe; the RST's
/// sequence number echoes the probe's ACK number per RFC 793.  Same
/// encode-into contract as craft_icmp_response_into.
[[nodiscard]] FR_HOT std::size_t craft_tcp_rst_into(
    std::span<const std::byte> probe_packet, std::span<std::byte> out) noexcept;

/// Allocating convenience wrappers over the _into variants (tests, tools).
[[nodiscard]] std::optional<std::vector<std::byte>> craft_icmp_response(
    std::uint8_t icmp_type, std::uint8_t icmp_code, Ipv4Address responder,
    std::span<const std::byte> probe_packet, std::uint8_t residual_ttl,
    std::optional<Ipv4Address> rewritten_destination = std::nullopt);
[[nodiscard]] std::optional<std::vector<std::byte>> craft_tcp_rst(
    std::span<const std::byte> probe_packet);

/// Everything a probing engine needs from one received packet.
struct ParsedResponse {
  Ipv4Address responder;      // outer source: the router/host that replied
  std::uint8_t outer_ttl = 0; // TTL of the response itself (unused by logic)

  bool is_icmp = false;
  std::uint8_t icmp_type = 0;
  std::uint8_t icmp_code = 0;

  // ICMP only: the quoted probe header (inner.ttl is the residual TTL the
  // probe had at the responder) and its first 8 payload bytes, already
  // interpreted per the quoted protocol.
  Ipv4Header inner;
  std::uint16_t inner_src_port = 0;
  std::uint16_t inner_dst_port = 0;
  std::uint16_t inner_udp_length = 0;  // UDP probes: carries 6 timestamp bits
  std::uint32_t inner_tcp_seq = 0;     // TCP probes: carries Yarrp's elapsed time

  bool is_tcp_rst = false;
  std::uint16_t tcp_src_port = 0;  // RST only: the destination's port view
  std::uint16_t tcp_dst_port = 0;
  std::uint32_t tcp_seq = 0;       // echoes the probe's ACK number

  FR_HOT bool is_time_exceeded() const noexcept {
    return is_icmp && icmp_type == kIcmpTimeExceeded;
  }
  FR_HOT bool is_destination_unreachable() const noexcept {
    return is_icmp && icmp_type == kIcmpDestUnreachable;
  }
};

/// Parses a received IPv4 packet (ICMP quoting a probe, or a bare TCP RST).
/// Returns nullopt for anything else or for truncated packets.
[[nodiscard]] FR_HOT std::optional<ParsedResponse> parse_response(
    std::span<const std::byte> packet);

}  // namespace flashroute::net
