// RFC 1071 Internet checksum.
//
// Besides header checksums, FlashRoute uses the checksum of the destination
// IP address as the probe's UDP source port (§3.1): a response whose quoted
// source port does not match the checksum of its quoted destination address
// reveals in-flight destination rewriting by a middlebox (§5.3).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "net/ipv4.h"
#include "util/annotations.h"

namespace flashroute::net {

/// One's-complement sum over `data`, folded to 16 bits (not yet inverted).
/// Exposed so checksums can be computed over multiple fragments (header +
/// pseudo-header) by chaining partial sums.
FR_HOT std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t sum = 0) noexcept;

/// Folds a partial sum and returns the final (inverted) Internet checksum.
FR_HOT std::uint16_t checksum_finish(std::uint32_t sum) noexcept;

/// Complete RFC 1071 checksum of a byte range.
FR_HOT std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept;

/// Checksum of the 4 bytes of an IPv4 address (network order) — the value
/// FlashRoute places in the UDP source-port field of each probe.
FR_HOT std::uint16_t address_checksum(Ipv4Address address) noexcept;

/// RFC 1624 (Eqn. 3) incremental update: the checksum of a header after one
/// aligned 16-bit word changes from `old_word` to `new_word`, given the
/// checksum before the change.  This is how the template-probe codec and
/// real routers patch a precomputed header without re-summing it; for any
/// header containing at least one nonzero word the result is bit-identical
/// to a full recomputation (see net_checksum_test's randomized equivalence).
/// Defined inline: encoders chain several updates per probe.
FR_HOT inline std::uint16_t incremental_checksum_update(
    std::uint16_t checksum, std::uint16_t old_word,
    std::uint16_t new_word) noexcept {
  // HC' = ~(~HC + ~m + m')  (RFC 1624 Eqn. 3)
  std::uint32_t sum = static_cast<std::uint32_t>(
                          static_cast<std::uint16_t>(~checksum)) +
                      static_cast<std::uint16_t>(~old_word) + new_word;
  sum = (sum & 0xFFFF) + (sum >> 16);
  sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace flashroute::net
