#include "net/checksum.h"

namespace flashroute::net {

FR_HOT std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t sum) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 |
           static_cast<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;  // odd trailing byte
  }
  return sum;
}

FR_HOT std::uint16_t checksum_finish(std::uint32_t sum) noexcept {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

FR_HOT std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  return checksum_finish(checksum_partial(data));
}

FR_HOT std::uint16_t address_checksum(Ipv4Address address) noexcept {
  const std::uint32_t v = address.value();
  std::uint32_t sum = (v >> 16) + (v & 0xFFFF);
  return checksum_finish(sum);
}

}  // namespace flashroute::net
