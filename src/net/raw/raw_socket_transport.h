// Real-network transport: raw IPv4 sockets (Linux).
//
// This is the path an actual deployment of this library uses: probes are
// written through a raw socket with IP_HDRINCL (we craft the full IPv4
// header, exactly the bytes the simulator consumes), and responses are read
// from a raw ICMP socket plus a raw TCP socket for RST replies to
// Paris-TCP-ACK probes.
//
// Requires CAP_NET_RAW (root).  It is compiled everywhere but exercised only
// by the examples/real_scan example; the test-suite and benchmarks run
// against the simulator.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/runtime.h"
#include "util/clock.h"
#include "util/token_bucket.h"

namespace flashroute::net {

/// Thrown when sockets cannot be created (typically: not root).
class TransportError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class RawSocketRuntime final : public core::ScanRuntime {
 public:
  /// Opens the raw sockets and installs a probing-rate throttle.
  explicit RawSocketRuntime(double probes_per_second);
  ~RawSocketRuntime() override;

  RawSocketRuntime(const RawSocketRuntime&) = delete;
  RawSocketRuntime& operator=(const RawSocketRuntime&) = delete;

  util::Nanos now() const noexcept override;
  /// Paces to the configured rate, then writes the packet through the raw
  /// socket, retrying a transient full send buffer (EAGAIN/ENOBUFS) a small
  /// bounded number of times.  Returns false when the kernel still refused
  /// the packet — the engine's retransmission layer recovers it.
  [[nodiscard]] bool try_send(std::span<const std::byte> packet) override;
  void drain(const Sink& sink) override;
  void idle_until(util::Nanos t, const Sink& sink) override;

 private:
  std::optional<std::vector<std::byte>> read_one();

  util::MonotonicClock clock_;
  util::TokenBucket throttle_;
  int send_fd_ = -1;
  int icmp_fd_ = -1;
  int tcp_fd_ = -1;
};

}  // namespace flashroute::net
