#include "net/raw/raw_socket_transport.h"

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace flashroute::net {

#ifdef __linux__

namespace {
int make_raw_socket(int protocol, bool header_included) {
  const int fd = ::socket(AF_INET, SOCK_RAW | SOCK_NONBLOCK, protocol);
  if (fd < 0) {
    throw TransportError(std::string("raw socket: ") + std::strerror(errno));
  }
  if (header_included) {
    const int one = 1;
    if (::setsockopt(fd, IPPROTO_IP, IP_HDRINCL, &one, sizeof one) != 0) {
      ::close(fd);
      throw TransportError(std::string("IP_HDRINCL: ") +
                           std::strerror(errno));
    }
  }
  return fd;
}
}  // namespace

RawSocketRuntime::RawSocketRuntime(double probes_per_second)
    : throttle_(probes_per_second, probes_per_second / 100.0 + 1.0,
                clock_.now()) {
  send_fd_ = make_raw_socket(IPPROTO_RAW, /*header_included=*/true);
  icmp_fd_ = make_raw_socket(IPPROTO_ICMP, /*header_included=*/false);
  tcp_fd_ = make_raw_socket(IPPROTO_TCP, /*header_included=*/false);
}

RawSocketRuntime::~RawSocketRuntime() {
  for (const int fd : {send_fd_, icmp_fd_, tcp_fd_}) {
    if (fd >= 0) ::close(fd);
  }
}

util::Nanos RawSocketRuntime::now() const noexcept { return clock_.now(); }

bool RawSocketRuntime::try_send(std::span<const std::byte> packet) {
  // Pace to the configured rate (the role virtual-clock advancement plays
  // in simulation).
  while (!throttle_.try_consume(clock_.now())) {
    // Busy-wait: at >= 100 Kpps the wait is microseconds; sleeping would
    // undershoot the rate badly.
  }
  if (packet.size() < 20) return false;
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  std::uint32_t daddr = 0;
  std::memcpy(&daddr, packet.data() + 16, 4);
  dst.sin_addr.s_addr = daddr;  // already network order in the packet
  // A full socket buffer (EAGAIN/ENOBUFS) is transient — the kernel is
  // draining it at line rate — so a couple of immediate retries usually
  // succeed.  Anything else (or exhaustion of the retries) is a failed
  // send: report it rather than silently dropping the probe.
  constexpr int kSendAttempts = 3;
  for (int attempt = 0; attempt < kSendAttempts; ++attempt) {
    const ssize_t wrote =
        ::sendto(send_fd_, packet.data(), packet.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dst), sizeof dst);
    if (wrote >= 0) {
      ++packets_sent_;
      return true;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != ENOBUFS) break;
  }
  return false;
}

std::optional<std::vector<std::byte>> RawSocketRuntime::read_one() {
  std::vector<std::byte> buffer(2048);
  for (const int fd : {icmp_fd_, tcp_fd_}) {
    const ssize_t got = ::recv(fd, buffer.data(), buffer.size(), 0);
    if (got > 0) {
      buffer.resize(static_cast<std::size_t>(got));
      return buffer;
    }
  }
  return std::nullopt;
}

void RawSocketRuntime::drain(const Sink& sink) {
  while (auto packet = read_one()) {
    sink(*packet, clock_.now());
  }
}

void RawSocketRuntime::idle_until(util::Nanos t, const Sink& sink) {
  while (clock_.now() < t) {
    drain(sink);
  }
}

#else  // !__linux__

RawSocketRuntime::RawSocketRuntime(double probes_per_second)
    : throttle_(probes_per_second, 1.0, 0) {
  throw TransportError("raw sockets are only supported on Linux");
}

RawSocketRuntime::~RawSocketRuntime() = default;
util::Nanos RawSocketRuntime::now() const noexcept { return clock_.now(); }
bool RawSocketRuntime::try_send(std::span<const std::byte>) { return false; }
std::optional<std::vector<std::byte>> RawSocketRuntime::read_one() {
  return std::nullopt;
}
void RawSocketRuntime::drain(const Sink&) {}
void RawSocketRuntime::idle_until(util::Nanos, const Sink&) {}

#endif

}  // namespace flashroute::net
