#include "net/headers.h"

#include <array>

#include "net/checksum.h"

namespace flashroute::net {

FR_HOT bool Ipv4Header::serialize(ByteWriter& w) const noexcept {
  std::array<std::byte, kSize> scratch{};
  ByteWriter header(scratch);
  header.put_u8(0x45);  // version 4, IHL 5
  header.put_u8(tos);
  header.put_u16(total_length);
  header.put_u16(id);
  header.put_u16(flags_fragment);
  header.put_u8(ttl);
  header.put_u8(protocol);
  header.put_u16(0);  // checksum placeholder
  header.put_u32(src.value());
  header.put_u32(dst.value());
  if (!header.ok()) return false;
  header.patch_u16(10, internet_checksum(scratch));
  w.put_bytes(scratch);
  return w.ok();
}

FR_HOT std::optional<Ipv4Header> Ipv4Header::parse(ByteReader& r) noexcept {
  const std::uint8_t version_ihl = r.get_u8();
  if (!r.ok() || (version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl_bytes = static_cast<std::size_t>(version_ihl & 0xF) * 4;
  if (ihl_bytes < kSize) return std::nullopt;
  Ipv4Header h;
  h.tos = r.get_u8();
  h.total_length = r.get_u16();
  h.id = r.get_u16();
  h.flags_fragment = r.get_u16();
  h.ttl = r.get_u8();
  h.protocol = r.get_u8();
  r.skip(2);  // checksum — validated separately when needed
  h.src = Ipv4Address(r.get_u32());
  h.dst = Ipv4Address(r.get_u32());
  if (ihl_bytes > kSize) r.skip(ihl_bytes - kSize);
  if (!r.ok()) return std::nullopt;
  return h;
}

FR_HOT bool UdpHeader::serialize(ByteWriter& w) const noexcept {
  w.put_u16(src_port);
  w.put_u16(dst_port);
  w.put_u16(length);
  w.put_u16(checksum);
  return w.ok();
}

FR_HOT std::optional<UdpHeader> UdpHeader::parse(ByteReader& r) noexcept {
  UdpHeader h;
  h.src_port = r.get_u16();
  h.dst_port = r.get_u16();
  h.length = r.get_u16();
  h.checksum = r.get_u16();
  if (!r.ok()) return std::nullopt;
  return h;
}

FR_HOT bool TcpHeader::serialize(ByteWriter& w) const noexcept {
  w.put_u16(src_port);
  w.put_u16(dst_port);
  w.put_u32(seq);
  w.put_u32(ack);
  w.put_u8(0x50);  // data offset 5 words
  w.put_u8(flags);
  w.put_u16(window);
  w.put_u16(checksum);
  w.put_u16(0);  // urgent pointer
  return w.ok();
}

FR_HOT std::optional<TcpHeader> TcpHeader::parse(ByteReader& r) noexcept {
  TcpHeader h;
  h.src_port = r.get_u16();
  h.dst_port = r.get_u16();
  h.seq = r.get_u32();
  h.ack = r.get_u32();
  const std::uint8_t data_offset = r.get_u8();
  h.flags = r.get_u8();
  h.window = r.get_u16();
  h.checksum = r.get_u16();
  r.skip(2);  // urgent pointer
  const std::size_t header_bytes = static_cast<std::size_t>(data_offset >> 4) * 4;
  if (header_bytes < kSize) return std::nullopt;
  if (header_bytes > kSize) r.skip(header_bytes - kSize);
  if (!r.ok()) return std::nullopt;
  return h;
}

FR_HOT bool IcmpHeader::serialize(ByteWriter& w) const noexcept {
  w.put_u8(type);
  w.put_u8(code);
  w.put_u16(checksum);
  w.put_u32(rest);
  return w.ok();
}

FR_HOT std::optional<IcmpHeader> IcmpHeader::parse(ByteReader& r) noexcept {
  IcmpHeader h;
  h.type = r.get_u8();
  h.code = r.get_u8();
  h.checksum = r.get_u16();
  h.rest = r.get_u32();
  if (!r.ok()) return std::nullopt;
  return h;
}

FR_HOT bool verify_ipv4_checksum(std::span<const std::byte> bytes) noexcept {
  if (bytes.empty()) return false;
  const auto version_ihl = static_cast<std::uint8_t>(bytes[0]);
  const std::size_t ihl_bytes = static_cast<std::size_t>(version_ihl & 0xF) * 4;
  if ((version_ihl >> 4) != 4 || ihl_bytes < Ipv4Header::kSize ||
      bytes.size() < ihl_bytes) {
    return false;
  }
  // A correct header (checksum field included) sums to 0xFFFF, so the final
  // inverted checksum over the full header is zero.
  return internet_checksum(bytes.first(ihl_bytes)) == 0;
}

}  // namespace flashroute::net
