// IPv4 address and /24-prefix primitives.
//
// FlashRoute traces one address per /24 block and keeps its per-destination
// state in an array indexed by the /24 prefix of the destination (§3.4), so
// the /24 prefix index is a first-class concept here.  The classification
// helpers implement the paper's exclusion of "private, multicast, and
// reserved destinations" from the scan.

#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "util/annotations.h"

namespace flashroute::net {

/// An IPv4 address held in host byte order.  Conversions to and from network
/// byte order happen only at the serialization boundary (see packet.h).
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order) noexcept
      : value_(host_order) {}

  /// Builds an address from its four dotted-quad octets, a.b.c.d.
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c,
                                           std::uint8_t d) noexcept {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation; rejects anything malformed
  /// (empty/overlong octets, values > 255, trailing junk).
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  FR_HOT constexpr std::uint32_t value() const noexcept { return value_; }
  FR_HOT constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept =
      default;

 private:
  std::uint32_t value_ = 0;
};

/// Index of the /24 block containing `addr`: the top 24 bits.
FR_HOT constexpr std::uint32_t prefix24_index(Ipv4Address addr) noexcept {
  return addr.value() >> 8;
}

/// The address `index`.x where x is the host octet.
FR_HOT constexpr Ipv4Address address_in_prefix24(
    std::uint32_t prefix_index, std::uint8_t host_octet) noexcept {
  return Ipv4Address((prefix_index << 8) | host_octet);
}

constexpr std::uint32_t kNumPrefix24 = std::uint32_t{1} << 24;

// --- Special-range classification (RFC 6890 and friends) -------------------

FR_HOT constexpr bool is_private(Ipv4Address a) noexcept {
  const std::uint32_t v = a.value();
  return (v >> 24) == 10 ||                       // 10.0.0.0/8
         (v >> 20) == (172u << 4 | 1) ||          // 172.16.0.0/12
         (v >> 16) == (192u << 8 | 168);          // 192.168.0.0/16
}

FR_HOT constexpr bool is_loopback(Ipv4Address a) noexcept {
  return (a.value() >> 24) == 127;                // 127.0.0.0/8
}

FR_HOT constexpr bool is_multicast(Ipv4Address a) noexcept {
  return (a.value() >> 28) == 0xE;                // 224.0.0.0/4
}

FR_HOT constexpr bool is_reserved(Ipv4Address a) noexcept {
  const std::uint32_t v = a.value();
  return (v >> 28) == 0xF ||                      // 240.0.0.0/4
         (v >> 24) == 0 ||                        // 0.0.0.0/8
         (v >> 16) == (169u << 8 | 254) ||        // 169.254.0.0/16 link-local
         (v >> 22) == (100u << 2 | 1) ||          // 100.64.0.0/10 CGN
         v == 0xFFFFFFFFu;                        // broadcast
}

/// True when FlashRoute must not probe this address: the paper removes all
/// private, multicast, and reserved destinations from the DCB list before
/// probing commences (§3.4).
FR_HOT constexpr bool is_probe_excluded(Ipv4Address a) noexcept {
  return is_private(a) || is_loopback(a) || is_multicast(a) || is_reserved(a);
}

}  // namespace flashroute::net

template <>
struct std::hash<flashroute::net::Ipv4Address> {
  std::size_t operator()(flashroute::net::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
