// Bounds-checked big-endian byte readers/writers for packet serialization.
//
// All header structs in headers.h serialize through these.  The writers and
// readers never touch memory outside the span they were given; a failed
// operation latches the `ok()` flag to false and subsequent reads return 0,
// so callers can serialize or parse a full header and check once at the end.

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

#include "util/annotations.h"

namespace flashroute::net {

class ByteWriter {
 public:
  explicit ByteWriter(std::span<std::byte> buffer) noexcept
      : buffer_(buffer) {}

  FR_HOT bool ok() const noexcept { return ok_; }
  FR_HOT std::size_t written() const noexcept { return offset_; }

  FR_HOT void put_u8(std::uint8_t v) noexcept {
    if (!ensure(1)) return;
    buffer_[offset_++] = std::byte{v};
  }

  FR_HOT void put_u16(std::uint16_t v) noexcept {
    if (!ensure(2)) return;
    buffer_[offset_++] = std::byte(v >> 8);
    buffer_[offset_++] = std::byte(v & 0xFF);
  }

  FR_HOT void put_u32(std::uint32_t v) noexcept {
    if (!ensure(4)) return;
    buffer_[offset_++] = std::byte(v >> 24);
    buffer_[offset_++] = std::byte((v >> 16) & 0xFF);
    buffer_[offset_++] = std::byte((v >> 8) & 0xFF);
    buffer_[offset_++] = std::byte(v & 0xFF);
  }

  FR_HOT void put_bytes(std::span<const std::byte> data) noexcept {
    if (!ensure(data.size())) return;
    std::memcpy(buffer_.data() + offset_, data.data(), data.size());
    offset_ += data.size();
  }

  /// Skips `n` bytes, zero-filling them.
  FR_HOT void put_zeros(std::size_t n) noexcept {
    if (!ensure(n)) return;
    std::memset(buffer_.data() + offset_, 0, n);
    offset_ += n;
  }

  /// Overwrites a previously written 16-bit field (e.g. a checksum slot).
  FR_HOT void patch_u16(std::size_t offset, std::uint16_t v) noexcept {
    if (offset + 2 > buffer_.size()) {
      ok_ = false;
      return;
    }
    buffer_[offset] = std::byte(v >> 8);
    buffer_[offset + 1] = std::byte(v & 0xFF);
  }

 private:
  FR_HOT bool ensure(std::size_t n) noexcept {
    if (!ok_ || offset_ + n > buffer_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<std::byte> buffer_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buffer) noexcept
      : buffer_(buffer) {}

  FR_HOT bool ok() const noexcept { return ok_; }
  FR_HOT std::size_t remaining() const noexcept { return buffer_.size() - offset_; }
  FR_HOT std::size_t consumed() const noexcept { return offset_; }

  FR_HOT std::uint8_t get_u8() noexcept {
    if (!ensure(1)) return 0;
    return static_cast<std::uint8_t>(buffer_[offset_++]);
  }

  FR_HOT std::uint16_t get_u16() noexcept {
    if (!ensure(2)) return 0;
    const auto hi = static_cast<std::uint16_t>(buffer_[offset_]);
    const auto lo = static_cast<std::uint16_t>(buffer_[offset_ + 1]);
    offset_ += 2;
    return static_cast<std::uint16_t>(hi << 8 | lo);
  }

  FR_HOT std::uint32_t get_u32() noexcept {
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = v << 8 | static_cast<std::uint32_t>(buffer_[offset_ + i]);
    }
    offset_ += 4;
    return v;
  }

  FR_HOT void skip(std::size_t n) noexcept {
    if (!ensure(n)) return;
    offset_ += n;
  }

  /// Returns the unread tail without consuming it.
  FR_HOT std::span<const std::byte> rest() const noexcept {
    return ok_ ? buffer_.subspan(offset_) : std::span<const std::byte>{};
  }

 private:
  FR_HOT bool ensure(std::size_t n) noexcept {
    if (!ok_ || offset_ + n > buffer_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::byte> buffer_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

}  // namespace flashroute::net
