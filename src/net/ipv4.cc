#include "net/ipv4.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace flashroute::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  std::array<std::uint32_t, 4> octets{};
  const char* cursor = text.data();
  const char* const end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    if (cursor == end) return std::nullopt;
    // Reject a leading '+'/'-' (from_chars would reject '+' but accept
    // nothing else odd) and overlong octets like "001".
    if (*cursor < '0' || *cursor > '9') return std::nullopt;
    const auto [next, ec] = std::from_chars(cursor, end, octets[i]);
    if (ec != std::errc{} || octets[i] > 255) return std::nullopt;
    if (next - cursor > 1 && *cursor == '0') return std::nullopt;
    cursor = next;
    if (i < 3) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
  }
  if (cursor != end) return std::nullopt;
  return from_octets(static_cast<std::uint8_t>(octets[0]),
                     static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]),
                     static_cast<std::uint8_t>(octets[3]));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

}  // namespace flashroute::net
